"""Batch serving front ends over a warm :class:`~repro.api.Session`.

Two thin transports expose the serving tier (result cache, admission,
overlapped ``run_many``) without any dependency beyond the stdlib:

* :func:`serve_ndjson` — newline-delimited JSON over arbitrary streams
  (stdin/stdout in the CLI).  Each input line is either one query object
  (the :meth:`~repro.api.queries._BaseQuery.to_dict` wire shape) or an
  array of them; each query produces exactly one NDJSON output line, in
  input order.  Arrays run through the overlapped ``run_many``, so a
  client that batches its independent seeded queries gets the pipelined
  path for free.
* :func:`serve_http` — a ``http.server``-based endpoint::

      POST /query    body = query object or array -> result / array
      GET  /stats    session + cache + serve counters
      GET  /healthz  liveness probe

  Requests are handled on server threads; query execution is serialized
  per request through a session lock (the session's *internal* overlap
  lanes still pipeline each batch), which keeps the shared warm scratch
  single-writer without a second queueing layer.

Error contract (both transports): every non-result outcome is a
structured envelope carrying one class of the error taxonomy
(:mod:`repro.api.result`) — ``bad_request`` for malformed input,
``rejected`` for admission refusals, ``timeout`` for missed
``deadline_ms`` budgets, ``failed`` for algorithm exceptions,
``degraded`` for a lost worker pool — and the stream/server keeps going
either way.  The NDJSON transport emits the envelopes inline, one line
per query, always.  The HTTP transport additionally maps the classes to
status codes (400 / 429 / 504 / 500 / 503): a single-query POST gets its
envelope's code, a batch POST answers 200 with inline envelopes unless
the batch is malformed (400) or every envelope carries the same error
class (that class's code).  ``GET /healthz`` turns 503 while the
runtime is degraded.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from typing import Any, Dict, IO, List, Optional

from .admission import AdmissionRejected
from .queries import query_from_dict
from .result import (
    ERROR_DEGRADED,
    ERROR_FAILED,
    ERROR_REJECTED,
    ERROR_TIMEOUT,
)
from .session import Session

__all__ = ["serve_ndjson", "serve_http", "ServeStats"]


class ServeStats:
    """Thread-safe request counters shared by the front ends."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.results = 0
        self.rejected = 0
        self.errors = 0

    def count(self, field: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + amount)

    def to_dict(self) -> Dict[str, int]:
        with self._lock:
            return {
                "requests": self.requests,
                "results": self.results,
                "rejected": self.rejected,
                "errors": self.errors,
            }


def _bad_request(detail: str) -> Dict[str, Any]:
    return {"error": "bad_request", "detail": detail}


_STATUS_BY_ERROR = {
    "bad_request": 400,
    ERROR_REJECTED: 429,   # the client may retry with a smaller budget
    ERROR_TIMEOUT: 504,    # the deadline elapsed before the answer
    ERROR_FAILED: 500,     # the algorithm raised
    ERROR_DEGRADED: 503,   # the runtime lost its pool
}


def _status_of(envelope: Dict[str, Any]) -> int:
    """The HTTP status an envelope maps to (200 for normal results)."""
    error = envelope.get("error")
    if error is None:
        extra = envelope.get("extra")
        if isinstance(extra, dict):
            error = extra.get("error")
    return _STATUS_BY_ERROR.get(error, 200)


def _answer(
    session: Session,
    payload: Any,
    stats: ServeStats,
    default_deadline_ms: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Run one decoded request payload; one envelope dict per query.

    A dict payload is a single query; a list payload is a batch handed to
    the overlapped ``run_many``.  Admission rejections, deadline misses
    and algorithm failures all come back as their structured envelopes
    in-position (never as exceptions), so a batch with one bad member
    still answers the rest.  Queries without their own ``deadline_ms``
    inherit ``default_deadline_ms`` (the server-wide latency SLO).
    """
    batch = payload if isinstance(payload, list) else [payload]
    if not batch:
        return []
    queries = []
    for entry in batch:
        if not isinstance(entry, dict):
            stats.count("errors")
            return [_bad_request("each query must be a JSON object")]
        try:
            query = query_from_dict(entry)
        except (ValueError, TypeError) as exc:
            stats.count("errors")
            return [_bad_request(str(exc))]
        if default_deadline_ms is not None and query.deadline_ms is None:
            query = dataclasses.replace(query, deadline_ms=default_deadline_ms)
        queries.append(query)
    try:
        results = session.run_many(
            queries, on_reject="envelope", on_error="envelope"
        )
    except AdmissionRejected as exc:  # defensive; run_many envelopes these
        stats.count("rejected")
        return [exc.envelope]
    out = []
    for result in results:
        envelope = result.to_dict()
        error = envelope.get("extra", {}).get("error")
        if error == ERROR_REJECTED:
            stats.count("rejected")
        elif error is not None:
            stats.count("errors")
        else:
            stats.count("results")
        out.append(envelope)
    return out


def serve_ndjson(
    session: Session,
    in_stream: IO[str],
    out_stream: IO[str],
    default_deadline_ms: Optional[int] = None,
) -> Dict[str, Any]:
    """Answer NDJSON queries from ``in_stream`` on ``out_stream``.

    Blocks until the input stream is exhausted; returns the final serve
    stats (also what ``repro serve`` prints to stderr on exit).  Output
    is flushed per input line, so a pipe-connected client sees each
    answer as soon as its line completes.  Error envelopes (rejection,
    timeout, failure) stay inline — one output line per query, always.
    """
    stats = ServeStats()
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        stats.count("requests")
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            stats.count("errors")
            envelopes = [_bad_request(f"invalid JSON: {exc}")]
        else:
            envelopes = _answer(session, payload, stats, default_deadline_ms)
        for envelope in envelopes:
            out_stream.write(json.dumps(envelope) + "\n")
        out_stream.flush()
    summary = dict(session.stats())
    summary["serve"] = stats.to_dict()
    return summary


def serve_http(
    session: Session,
    host: str = "127.0.0.1",
    port: int = 8321,
    *,
    poll_interval: float = 0.5,
    ready: Optional[threading.Event] = None,
    stop: Optional[threading.Event] = None,
    default_deadline_ms: Optional[int] = None,
) -> Dict[str, Any]:
    """Serve the HTTP endpoint until interrupted (or ``stop`` is set).

    ``ready``/``stop`` exist for embedding (tests, background threads):
    ``ready`` is set once the socket is bound — read the bound port from
    ``ready.port`` when ``port=0`` asked for an ephemeral one.

    ``default_deadline_ms`` is the server-wide latency SLO: queries that
    do not carry their own ``deadline_ms`` inherit it.  Status codes
    follow the error taxonomy (429 rejected, 504 timeout, 500 failed,
    503 degraded); ``/healthz`` answers 503 with the supervision
    counters while the runtime is degraded.
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    stats = ServeStats()
    session_lock = threading.Lock()

    class Handler(BaseHTTPRequestHandler):
        # Quiet by default: serving stderr is for the exit summary.
        def log_message(self, fmt, *args):  # noqa: D102
            pass

        def _send(self, code: int, payload: Any) -> None:
            body = json.dumps(payload).encode()
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
            if self.path == "/healthz":
                health = session.runtime_health()
                if health is not None and health.degraded:
                    # Not-ready: load balancers should drain this
                    # replica — it still answers (serially), but at a
                    # fraction of its provisioned throughput.
                    self._send(
                        503,
                        {
                            "ok": False,
                            "degraded": True,
                            "runtime": health.to_dict(),
                        },
                    )
                    return
                payload: Dict[str, Any] = {"ok": True}
                if health is not None:
                    payload["runtime"] = health.to_dict()
                self._send(200, payload)
            elif self.path == "/stats":
                summary = dict(session.stats())
                summary["serve"] = stats.to_dict()
                self._send(200, summary)
            else:
                self._send(404, _bad_request(f"unknown path {self.path!r}"))

        def do_POST(self) -> None:  # noqa: N802
            if self.path != "/query":
                self._send(404, _bad_request(f"unknown path {self.path!r}"))
                return
            stats.count("requests")
            length = int(self.headers.get("Content-Length") or 0)
            try:
                payload = json.loads(self.rfile.read(length) or b"null")
            except json.JSONDecodeError as exc:
                stats.count("errors")
                self._send(400, _bad_request(f"invalid JSON: {exc}"))
                return
            with session_lock:
                envelopes = _answer(
                    session, payload, stats, default_deadline_ms
                )
            if isinstance(payload, list):
                # A malformed batch is the client's fault: 400.  A clean
                # batch answers 200 with the envelopes inline — unless
                # every envelope carries the same error class, in which
                # case that class's code is more useful to middleboxes
                # (e.g. an all-rejected burst surfaces as 429).
                statuses = {_status_of(e) for e in envelopes}
                if 400 in statuses:
                    code = 400
                elif len(statuses) == 1:
                    code = statuses.pop()
                else:
                    code = 200
                self._send(code, envelopes)
            else:
                self._send(_status_of(envelopes[0]), envelopes[0])

    server = ThreadingHTTPServer((host, port), Handler)
    server.daemon_threads = True
    server.timeout = poll_interval
    try:
        if ready is not None:
            ready.port = server.server_address[1]  # type: ignore[attr-defined]
            ready.set()
        while stop is None or not stop.is_set():
            server.handle_request()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    summary = dict(session.stats())
    summary["serve"] = stats.to_dict()
    return summary
