"""The session-based query API — one warm facade over the whole system.

PRs 1–3 made sampling, selection and parallel generation fast; this
package makes them *servable*.  Instead of a pile of free functions with
ad-hoc kwargs and per-call cold starts (engine build, pool spin-up,
arena allocation), callers open a :class:`Session` on a graph and submit
typed queries:

* :class:`SamplingBudget` — shared work limits (samples, ε/ℓ, MC runs,
  workers),
* :class:`BoostQuery` / :class:`SeedQuery` / :class:`EvalQuery` — the
  three request shapes, JSON-round-trippable via
  :func:`query_from_dict`,
* :class:`QueryResult` — the uniform serializable answer envelope
  (selected set, named estimates, sample counts, timings, and a
  reproducibility fingerprint),
* :func:`register_algorithm` — the string-keyed registry every
  algorithm (built-in or third-party) dispatches through.

On top of the session sits the serving tier: a fingerprint-keyed
:class:`ResultCache` (graph-version-invalidated envelope memoization),
an :class:`AdmissionPolicy` pricing queries before sampling
(:exc:`AdmissionRejected` / structured rejection envelopes), the
overlapped :meth:`Session.run_many` pipelining independent seeded
queries over the shared-memory runtime, and the :func:`serve_ndjson` /
:func:`serve_http` front ends behind ``repro serve``.

The legacy free functions (``prr_boost``, ``prr_boost_lb``, ``imm``,
``ssa``, ...) remain available as thin wrappers over a default throwaway
session, returning their historical result objects bit-for-bit.
"""

from . import algorithms as _algorithms  # noqa: F401  (registers built-ins)
from .admission import (
    AdmissionDecision,
    AdmissionPolicy,
    AdmissionRejected,
    QueryCost,
    estimate_cost,
)
from .cache import ResultCache
from .queries import (
    BoostQuery,
    EvalQuery,
    Query,
    SamplingBudget,
    SeedQuery,
    TreeQuery,
    query_from_dict,
)
from .registry import algorithm_names, get_algorithm, register_algorithm
from .result import (
    ERROR_DEGRADED,
    ERROR_FAILED,
    ERROR_REJECTED,
    ERROR_TIMEOUT,
    QueryResult,
    QueryTimeout,
    degraded_result,
    error_result,
    failure_result,
    timeout_result,
)
from .serve import serve_http, serve_ndjson
from .session import Session

__all__ = [
    "Session",
    "SamplingBudget",
    "BoostQuery",
    "SeedQuery",
    "EvalQuery",
    "TreeQuery",
    "Query",
    "QueryResult",
    "query_from_dict",
    "register_algorithm",
    "get_algorithm",
    "algorithm_names",
    "ResultCache",
    "AdmissionPolicy",
    "AdmissionDecision",
    "AdmissionRejected",
    "QueryCost",
    "estimate_cost",
    "serve_ndjson",
    "serve_http",
    "QueryTimeout",
    "ERROR_REJECTED",
    "ERROR_TIMEOUT",
    "ERROR_FAILED",
    "ERROR_DEGRADED",
    "error_result",
    "timeout_result",
    "failure_result",
    "degraded_result",
]
