"""The session facade: one warm surface over engine, runtime and algorithms.

A :class:`Session` binds a :class:`~repro.graphs.digraph.DiGraph` to all
the state that is expensive to build and cheap to keep:

* the graph's :class:`~repro.engine.SamplingEngine` (CSR views, per-edge
  hash bases and Bernoulli thresholds, reusable stamp/lane buffers) —
  built eagerly at session open, so the first query is as fast as the
  hundredth,
* the shared-memory parallel runtime (:mod:`repro.core.parallel`) for
  queries with ``workers > 1`` — spun up on first use (or pre-warmed by
  :meth:`run_many`), torn down by :meth:`close`,
* recycled :class:`~repro.engine.coverage.CoverageIndex` /
  :class:`~repro.core.prr.PRRArena` scratch for the selection-heavy
  algorithms, cleared between queries instead of re-allocated,
* per-diffusion-model graph views (:meth:`Session.graph_for` /
  :meth:`Session.engine_for`): queries carry a ``model`` key
  (incoming-boost IC, outgoing-boost IC, or LT — see
  :mod:`repro.engine.models`), and the session keys its engine cache by
  model so e.g. the LT-normalized graph and its warm engine are built
  once and shared by every later LT query.

Queries are typed objects (:mod:`repro.api.queries`) dispatched through
the string-keyed registry (:mod:`repro.api.registry`); every answer is a
uniform, JSON-serializable :class:`~repro.api.result.QueryResult`.

Sessions are context managers::

    with Session(graph) as session:
        seeds = session.run(SeedQuery(k=20, rng_seed=7)).selected
        boost = session.run(BoostQuery(seeds=seeds, k=50, rng_seed=7))
        delta = session.run(EvalQuery(seeds=seeds, boost=boost.selected,
                                      rng_seed=7))

Lifecycle contract: :meth:`close` is idempotent, releases the worker
pool and its shared-memory segments (when this session's graph owns
them), and any later :meth:`run` raises ``RuntimeError``.  Sessions are
not thread-safe — the warm scratch and the engine's stamp buffers are
shared mutable state; use one session per thread.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..engine import SamplingEngine
from ..engine.coverage import CoverageIndex
from ..graphs.digraph import DiGraph
from .queries import Query, SamplingBudget
from .registry import get_algorithm
from .result import QueryResult, fingerprint_of

__all__ = ["Session"]


def _package_version() -> str:
    # Imported lazily: repro/__init__ defines __version__ *after* it
    # imports this package, so the attribute only exists at query time.
    from .. import __version__

    return __version__


class Session:
    """A warm query facade bound to one influence graph.

    Parameters
    ----------
    graph:
        The influence graph every query of this session runs against.
    budget:
        Session-wide default :class:`SamplingBudget`, used by queries
        that do not carry their own.
    manage_runtime:
        When True (default), :meth:`close` tears down the shared-memory
        parallel runtime if it is bound to this session's graph.  The
        legacy free-function wrappers pass False so a throwaway
        per-call session never kills the warm pool between calls.
    """

    def __init__(
        self,
        graph: DiGraph,
        budget: Optional[SamplingBudget] = None,
        manage_runtime: bool = True,
    ) -> None:
        self.graph = graph
        self.default_budget = budget if budget is not None else SamplingBudget()
        self._manage_runtime = bool(manage_runtime)
        self._closed = False
        self.queries_run = 0
        # Warm the engine now: CSR views, splitmix64 hash bases, integer
        # thresholds and scratch planes are built once per graph and every
        # query (and every other session on the same graph) reuses them.
        self.engine = SamplingEngine.for_graph(graph)
        self._scratch_index: Optional[CoverageIndex] = None
        self._scratch_arena = None  # repro.core.prr.PRRArena, built lazily
        self._candidates_cache: dict = {}
        # Per-diffusion-model graph views, keyed by canonical model name.
        # IC-family models run on the session graph itself; the LT model
        # runs on the weight-normalized copy, built (and its engine
        # warmed) on first LT query — this is the engine-cache keying
        # that lets one warm session serve every diffusion semantics.
        self._model_graphs: dict = {"ic": graph, "ic_out": graph}
        src, dst, p, pp = graph.edge_arrays()
        self._graph_signature = {
            "n": int(graph.n),
            "m": int(graph.m),
            "p_sum": round(float(p.sum()), 9),
            "pp_sum": round(float(pp.sum()), 9),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release session state (idempotent).

        Drops the recycled scratch and — for runtime-managing sessions —
        shuts down the shared-memory worker pool when it is bound to this
        session's graph, unlinking the published graph segment and any
        in-flight result segments.  The engine stays cached on the graph
        (it is plain process-local memory shared by design).
        """
        if self._closed:
            return
        self._closed = True
        self._scratch_index = None
        self._scratch_arena = None
        self._candidates_cache.clear()
        self._model_graphs.clear()
        if self._manage_runtime:
            from ..core.parallel import shutdown_runtime_for

            shutdown_runtime_for(self.graph)

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    # ------------------------------------------------------------------
    # Warm scratch
    # ------------------------------------------------------------------
    def scratch_index(self) -> CoverageIndex:
        """A cleared coverage index, recycled across this session's queries.

        Handlers whose results never alias the index (PRR-Boost's μ arm)
        use this instead of allocating; handlers that hand sample views to
        the caller (IMM/SSA's ``samples``) must NOT — they allocate their
        own so results outlive the next query.
        """
        self._check_open()
        if self._scratch_index is None:
            self._scratch_index = CoverageIndex(self.graph.n)
        else:
            self._scratch_index.clear()
        return self._scratch_index

    def scratch_arena(self):
        """A cleared PRR arena, recycled across this session's queries."""
        self._check_open()
        from ..core.prr import PRRArena

        if self._scratch_arena is None:
            self._scratch_arena = PRRArena(self.graph.n)
        else:
            self._scratch_arena.clear()
        return self._scratch_arena

    def graph_for(self, model=None) -> DiGraph:
        """The graph view queries under ``model`` run on, cached per model.

        IC-family models share the session graph; the LT model gets the
        weight-normalized copy (each node's incoming base weights scaled
        to sum ≤ 1), built once on first use.  Accepts a model name,
        alias, or instance; ``None`` means the default incoming-boost IC.
        """
        self._check_open()
        from ..engine.models import resolve_model

        mdl = resolve_model(model)
        graph = self._model_graphs.get(mdl.name)
        if graph is None:
            graph = mdl.prepare_graph(self.graph)
            self._model_graphs[mdl.name] = graph
        return graph

    def engine_for(self, model=None) -> SamplingEngine:
        """The warm engine serving ``model``'s graph view.

        The default model returns the session engine; other views get
        (and cache, via the graph's engine slot) their own engine, so a
        mixed query stream pays each model's warm-up exactly once.
        """
        graph = self.graph_for(model)
        if graph is self.graph:
            return self.engine
        return SamplingEngine.for_graph(graph)

    def candidates_for(self, seeds) -> set:
        """The non-seed candidate pool for ``seeds``, cached per seed set.

        Serving traffic repeats queries against a handful of seed sets;
        deriving ``{0..n-1} - seeds`` is O(n) per call, so the warm
        session memoizes it.  Consumers treat the pool as read-only
        (mask building and membership tests), so sharing one set object
        is safe and output-identical.
        """
        self._check_open()
        key = tuple(seeds)
        pool = self._candidates_cache.get(key)
        if pool is None:
            seed_set = set(key)
            pool = {v for v in range(self.graph.n) if v not in seed_set}
            if len(self._candidates_cache) >= 16:
                self._candidates_cache.clear()
            self._candidates_cache[key] = pool
        return pool

    # ------------------------------------------------------------------
    # Runtime
    # ------------------------------------------------------------------
    def resolve_budget(self, query: Query) -> SamplingBudget:
        """The budget a query runs under (its own, else the session's)."""
        return query.budget if query.budget is not None else self.default_budget

    def _effective_workers(self, queries: Sequence[Query]) -> int:
        from ..core.parallel import resolve_sampler_workers

        best = 1
        for query in queries:
            budget = self.resolve_budget(query)
            best = max(best, resolve_sampler_workers(budget.workers))
        return best

    def ensure_runtime(self, workers: Optional[int] = None) -> bool:
        """Pre-warm the shared-memory pool for ``workers`` (fork platforms).

        Returns whether a pool is (now) running for this graph; serial
        configurations and fork-less platforms return False and stay
        serial — queries then fall back transparently.
        """
        self._check_open()
        from ..core.parallel import (
            fork_available,
            get_runtime,
            resolve_sampler_workers,
        )

        effective = resolve_sampler_workers(workers)
        if effective <= 1 or not fork_available():
            return False
        get_runtime(self.graph, effective)
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def run(
        self, query: Query, rng: Optional[np.random.Generator] = None
    ) -> QueryResult:
        """Answer one typed query on the warm state.

        RNG resolution: an explicit ``query.rng_seed`` always wins (the
        reproducible, serializable form); otherwise the ambient ``rng``
        is consumed — the legacy free functions pass their caller's live
        generator through, which is what keeps wrapper results
        bit-for-bit identical to the pre-session API; with neither, the
        query runs on fresh OS entropy.
        """
        self._check_open()
        handler = get_algorithm(query.algorithm)
        if query.rng_seed is not None:
            rng = np.random.default_rng(query.rng_seed)
        elif rng is None:
            rng = np.random.default_rng()
        start = time.perf_counter()
        result = handler(self, query, rng)
        result.timings["total"] = time.perf_counter() - start
        result.query = query.to_dict()
        result.fingerprint = fingerprint_of(
            {
                "query": result.query,
                "budget": self.resolve_budget(query).to_dict(),
                "graph": self._graph_signature,
                "version": _package_version(),
            }
        )
        self.queries_run += 1
        return result

    def run_many(
        self,
        queries: Iterable[Query],
        rng: Optional[np.random.Generator] = None,
    ) -> List[QueryResult]:
        """Answer a batch of queries on shared warm state.

        The worker pool is pre-warmed once for the largest worker count
        any query in the batch asks for, so the first parallel query does
        not pay pool startup.  Queries with an explicit ``rng_seed`` run
        on their own reproducible stream; the rest consume the ambient
        ``rng`` in batch order (or fresh entropy when none is given).
        """
        self._check_open()
        batch = list(queries)
        workers = self._effective_workers(batch)
        if workers > 1:
            self.ensure_runtime(workers)
        return [self.run(query, rng=rng) for query in batch]
