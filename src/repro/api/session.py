"""The session facade: one warm surface over engine, runtime and algorithms.

A :class:`Session` binds a :class:`~repro.graphs.digraph.DiGraph` to all
the state that is expensive to build and cheap to keep:

* the graph's :class:`~repro.engine.SamplingEngine` (CSR views, per-edge
  hash bases and Bernoulli thresholds, reusable stamp/lane buffers) —
  built eagerly at session open, so the first query is as fast as the
  hundredth,
* the shared-memory parallel runtime (:mod:`repro.core.parallel`) for
  queries with ``workers > 1`` — spun up on first use (or pre-warmed by
  :meth:`run_many`), torn down by :meth:`close`,
* recycled :class:`~repro.engine.coverage.CoverageIndex` /
  :class:`~repro.core.prr.PRRArena` scratch for the selection-heavy
  algorithms, cleared between queries instead of re-allocated,
* per-diffusion-model graph views (:meth:`Session.graph_for` /
  :meth:`Session.engine_for`): queries carry a ``model`` key
  (incoming-boost IC, outgoing-boost IC, or LT — see
  :mod:`repro.engine.models`), and the session keys its engine cache by
  model so e.g. the LT-normalized graph and its warm engine are built
  once and shared by every later LT query.

On top of that sits the serving tier:

* an optional :class:`~repro.api.cache.ResultCache` memoizes whole
  result envelopes for seeded queries, invalidated automatically when
  the graph's :attr:`~repro.graphs.DiGraph.version` moves (the
  session's graph signature, engine binding and per-model graph views
  refresh on the same signal),
* an optional :class:`~repro.api.admission.AdmissionPolicy` prices each
  query *before* sampling and rejects (or queues) over-budget work,
* :meth:`run_many` **overlaps** independent seeded queries: each runs in
  a session-owned lane thread through a :class:`_SessionLane` view
  (thread-local engine and scratch via the thread-keyed
  :meth:`SamplingEngine.for_graph`), and their sampling chunks interleave
  on the one shared-memory worker pool through the runtime's
  tag-multiplexed ``submit``/``gather`` — one query's selection phase
  runs while the others' samples are still being drawn.  Results are
  bit-identical to the serial path because every seeded query's
  collection is a pure function of ``(count, rng_seed)``.

Queries are typed objects (:mod:`repro.api.queries`) dispatched through
the string-keyed registry (:mod:`repro.api.registry`); every answer is a
uniform, JSON-serializable :class:`~repro.api.result.QueryResult`.

Sessions are context managers::

    with Session(graph, cache=ResultCache()) as session:
        seeds = session.run(SeedQuery(k=20, rng_seed=7)).selected
        boost = session.run(BoostQuery(seeds=seeds, k=50, rng_seed=7))
        delta = session.run(EvalQuery(seeds=seeds, boost=boost.selected,
                                      rng_seed=7))

Lifecycle contract: :meth:`close` is idempotent, releases the lane pool
and the worker pool with its shared-memory segments (when this session's
graph owns them), and any later :meth:`run` raises ``RuntimeError``.
Direct :meth:`run` calls remain single-threaded per session — the warm
scratch is shared mutable state; concurrency belongs to :meth:`run_many`
(overlap lanes) and the serving front end built on it.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..engine import SamplingEngine
from ..engine.coverage import CoverageIndex
from ..graphs.digraph import DiGraph
from .admission import (
    QUEUE,
    REJECT,
    AdmissionPolicy,
    AdmissionRejected,
    rejection_result,
)
from .cache import ResultCache
from .queries import Query, SamplingBudget
from .registry import get_algorithm
from .result import (
    QueryResult,
    QueryTimeout,
    failure_result,
    fingerprint_of,
)

__all__ = ["Session"]


def _package_version() -> str:
    # Imported lazily: repro/__init__ defines __version__ *after* it
    # imports this package, so the attribute only exists at query time.
    from .. import __version__

    return __version__


class _SessionLane:
    """A thread-facing view of a :class:`Session` for overlap lanes.

    Handlers receive this instead of the session itself when a query runs
    on a lane thread.  Reads delegate to the base session (graph, budget
    resolution, the locked per-model graph and candidate caches); the
    *mutable scratch* — engine stamp buffers, coverage index, PRR arena —
    resolves to thread-local instances instead, because those are the
    parts two concurrent queries must never share.  The engine comes from
    the thread-keyed :meth:`SamplingEngine.for_graph`, the same call every
    sampler makes internally, so handler-level and sampler-level accesses
    agree on one engine per (thread, graph).
    """

    __slots__ = ("_base",)

    def __init__(self, base: "Session") -> None:
        self._base = base

    def __getattr__(self, name):
        return getattr(self._base, name)

    @property
    def graph(self) -> DiGraph:
        return self._base.graph

    @property
    def engine(self) -> SamplingEngine:
        return SamplingEngine.for_graph(self._base.graph)

    def engine_for(self, model=None) -> SamplingEngine:
        return SamplingEngine.for_graph(self._base.graph_for(model))

    def scratch_index(self) -> CoverageIndex:
        tls = self._base._lane_tls
        index = getattr(tls, "index", None)
        if index is None:
            index = CoverageIndex(self._base.graph.n)
            tls.index = index
        else:
            index.clear()
        return index

    def scratch_arena(self):
        from ..core.prr import PRRArena

        tls = self._base._lane_tls
        arena = getattr(tls, "arena", None)
        if arena is None:
            arena = PRRArena(self._base.graph.n)
            tls.arena = arena
        else:
            arena.clear()
        return arena


class Session:
    """A warm query facade bound to one influence graph.

    Parameters
    ----------
    graph:
        The influence graph every query of this session runs against.
    budget:
        Session-wide default :class:`SamplingBudget`, used by queries
        that do not carry their own.
    manage_runtime:
        When True (default), :meth:`close` tears down the shared-memory
        parallel runtime if it is bound to this session's graph.  The
        legacy free-function wrappers pass False so a throwaway
        per-call session never kills the warm pool between calls.
    cache:
        Optional :class:`ResultCache`.  Seeded queries whose fingerprint,
        graph version, model, seed and effective worker count match a
        previous run return the cached envelope without sampling.
    admission:
        Optional :class:`AdmissionPolicy`.  Every query is priced before
        it runs; rejection raises :exc:`AdmissionRejected` (or yields a
        rejection envelope in :meth:`run_many` with
        ``on_reject="envelope"``), and "queue"-classed queries run after
        the admitted wave of their batch.
    overlap_lanes:
        Lane threads :meth:`run_many` may use to overlap independent
        seeded queries (the pool is created lazily on the first
        overlapped batch).
    hosts:
        Optional worker-host endpoints (``"host:port,host:port"`` or a
        sequence) running ``repro dist-worker`` on replicas of this
        graph.  The session connects a
        :class:`~repro.dist.DistributedRuntime` eagerly (handshake
        failures raise here, not mid-query) and binds it to the graph,
        after which every chunked sampling dispatch shards across the
        hosts; results stay bit-identical to the local paths.
    """

    def __init__(
        self,
        graph: DiGraph,
        budget: Optional[SamplingBudget] = None,
        manage_runtime: bool = True,
        cache: Optional[ResultCache] = None,
        admission: Optional[AdmissionPolicy] = None,
        overlap_lanes: int = 4,
        hosts=None,
    ) -> None:
        self.graph = graph
        self.default_budget = budget if budget is not None else SamplingBudget()
        self._manage_runtime = bool(manage_runtime)
        self.cache = cache
        self.admission = admission
        self.overlap_lanes = max(1, int(overlap_lanes))
        self._closed = False
        self.queries_run = 0
        self._stats_lock = threading.Lock()
        # Guards the version-keyed state (signature, model-graph views)
        # and the lazily-created caches the lane threads share.
        self._state_lock = threading.RLock()
        self._lane_pool: Optional[ThreadPoolExecutor] = None
        self._lane_tls = threading.local()
        # Warm the engine now: CSR views, splitmix64 hash bases, integer
        # thresholds and scratch planes are built once per graph and every
        # query (and every other session on the same graph) reuses them.
        SamplingEngine.for_graph(graph)
        self._scratch_index: Optional[CoverageIndex] = None
        self._scratch_arena = None  # repro.core.prr.PRRArena, built lazily
        self._candidates_cache: dict = {}
        self._tree_cache: dict = {}
        # Per-diffusion-model graph views, keyed by canonical model name.
        # IC-family models run on the session graph itself; the LT model
        # runs on the weight-normalized copy, built (and its engine
        # warmed) on first LT query — this is the engine-cache keying
        # that lets one warm session serve every diffusion semantics.
        self._model_graphs: dict = {"ic": graph, "ic_out": graph}
        self._graph_signature: Dict[str, float] = {}
        self._signature_version = -1
        self._signature()
        self._dist = None
        if hosts:
            from ..core.parallel import bind_distributed_runtime
            from ..dist import DistributedRuntime

            self._dist = DistributedRuntime(graph, hosts)
            bind_distributed_runtime(graph, self._dist)

    @classmethod
    def from_store(cls, path, mode: str = "mmap", **kwargs) -> "Session":
        """Open a session directly on an on-disk graph store.

        ``mode="mmap"`` (default) backs the graph — and the engine's
        precomputed arrays, warmed here at open — by zero-copy views
        over the store file, so session open cost and resident memory
        are both independent of graph size; ``mode="memory"``
        materializes the store into RAM first.  Remaining keyword
        arguments go to the :class:`Session` constructor.
        """
        from ..storage import open_graph

        return cls(open_graph(path, mode=mode), **kwargs)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release session state (idempotent).

        Drops the recycled scratch, joins the overlap lane pool, and —
        for runtime-managing sessions — shuts down the shared-memory
        worker pool when it is bound to this session's graph, unlinking
        the published graph segment and any in-flight result segments.
        The engine stays cached on the graph (it is plain process-local
        memory shared by design).
        """
        if self._closed:
            return
        self._closed = True
        pool, self._lane_pool = self._lane_pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        self._scratch_index = None
        self._scratch_arena = None
        self._candidates_cache.clear()
        self._tree_cache.clear()
        self._model_graphs.clear()
        if self._dist is not None:
            from ..core.parallel import unbind_distributed_runtime

            unbind_distributed_runtime(self.graph)
            self._dist.shutdown()
            self._dist = None
        if self._manage_runtime:
            from ..core.parallel import shutdown_runtime_for

            shutdown_runtime_for(self.graph)

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    # ------------------------------------------------------------------
    # Warm state, keyed by the graph version
    # ------------------------------------------------------------------
    @property
    def engine(self) -> SamplingEngine:
        """The warm engine for the session graph (rebuilt transparently
        when the graph's probabilities are updated in place)."""
        return SamplingEngine.for_graph(self.graph)

    def _signature(self) -> Dict[str, float]:
        """The fingerprint's graph component, refreshed on version bumps.

        A probability update (:meth:`DiGraph.update_probabilities`) bumps
        the graph version; the next query recomputes the probability
        sums and drops the per-model graph views built from the old
        arrays, so fingerprints and LT-normalized copies always describe
        the graph a query actually ran on.  The version itself is *not*
        part of the signature — equal graphs give equal fingerprints
        across fresh processes — it is the cache key's invalidation
        field instead.
        """
        version = getattr(self.graph, "version", 0)
        with self._state_lock:
            if self._signature_version != version:
                src, dst, p, pp = self.graph.edge_arrays()
                self._graph_signature = {
                    "n": int(self.graph.n),
                    "m": int(self.graph.m),
                    "p_sum": round(float(p.sum()), 9),
                    "pp_sum": round(float(pp.sum()), 9),
                }
                self._model_graphs = {"ic": self.graph, "ic_out": self.graph}
                self._signature_version = version
            return self._graph_signature

    def fingerprint_for(self, query: Query) -> str:
        """The reproducibility fingerprint a query will be stamped with.

        Binds the query dict, its resolved budget *minus the ``workers``
        execution hint*, the graph signature and the package version.
        Workers are excluded deliberately: the chunked parallel path and
        the serial path draw different (equally valid) streams, so the
        worker count is an execution detail tracked by the result cache's
        key, not part of the query's semantic identity — fingerprints
        are stable across worker counts, fresh sessions, and cache
        on/off.
        """
        budget = self.resolve_budget(query).to_dict()
        budget.pop("workers", None)
        return fingerprint_of(
            {
                # canonical_dict drops the query's embedded budget — the
                # resolved one above is the binding copy.
                "query": query.canonical_dict(),
                "budget": budget,
                "graph": self._signature(),
                "version": _package_version(),
            }
        )

    # ------------------------------------------------------------------
    # Warm scratch
    # ------------------------------------------------------------------
    def scratch_index(self) -> CoverageIndex:
        """A cleared coverage index, recycled across this session's queries.

        Handlers whose results never alias the index (PRR-Boost's μ arm)
        use this instead of allocating; handlers that hand sample views to
        the caller (IMM/SSA's ``samples``) must NOT — they allocate their
        own so results outlive the next query.
        """
        self._check_open()
        if self._scratch_index is None:
            self._scratch_index = CoverageIndex(self.graph.n)
        else:
            self._scratch_index.clear()
        return self._scratch_index

    def scratch_arena(self):
        """A cleared PRR arena, recycled across this session's queries."""
        self._check_open()
        from ..core.prr import PRRArena

        if self._scratch_arena is None:
            self._scratch_arena = PRRArena(self.graph.n)
        else:
            self._scratch_arena.clear()
        return self._scratch_arena

    def graph_for(self, model=None) -> DiGraph:
        """The graph view queries under ``model`` run on, cached per model.

        IC-family models share the session graph; the LT model gets the
        weight-normalized copy (each node's incoming base weights scaled
        to sum ≤ 1), built once on first use.  Accepts a model name,
        alias, or instance; ``None`` means the default incoming-boost IC.
        """
        self._check_open()
        from ..engine.models import resolve_model

        mdl = resolve_model(model)
        self._signature()  # drop stale model views after a graph mutation
        with self._state_lock:
            graph = self._model_graphs.get(mdl.name)
            if graph is None:
                graph = mdl.prepare_graph(self.graph)
                self._model_graphs[mdl.name] = graph
            return graph

    def engine_for(self, model=None) -> SamplingEngine:
        """The warm engine serving ``model``'s graph view.

        The default model returns the session engine; other views get
        (and cache, via the graph's engine slot) their own engine, so a
        mixed query stream pays each model's warm-up exactly once.
        """
        return SamplingEngine.for_graph(self.graph_for(model))

    def candidates_for(self, seeds) -> set:
        """The non-seed candidate pool for ``seeds``, cached per seed set.

        Serving traffic repeats queries against a handful of seed sets;
        deriving ``{0..n-1} - seeds`` is O(n) per call, so the warm
        session memoizes it.  Consumers treat the pool as read-only
        (mask building and membership tests), so sharing one set object
        is safe and output-identical.
        """
        self._check_open()
        key = tuple(seeds)
        with self._state_lock:
            pool = self._candidates_cache.get(key)
            if pool is None:
                seed_set = set(key)
                pool = {v for v in range(self.graph.n) if v not in seed_set}
                if len(self._candidates_cache) >= 16:
                    self._candidates_cache.clear()
                self._candidates_cache[key] = pool
            return pool

    def tree_for(self, seeds, root: int = 0):
        """The rooted :class:`~repro.trees.BidirectedTree` view for
        ``(seeds, root)``, cached per graph version.

        Building the rooted view is an O(n) BFS plus probability table
        assembly, and the tree handlers additionally reuse its cached
        :class:`~repro.trees.bidirected.TreePlan`; serving traffic
        repeats queries against a handful of seed sets, so the session
        memoizes the whole object.  Raises ``ValueError`` (from the tree
        constructor) when the session graph is not a bidirected tree.
        Entries are keyed by the graph version, so in-place probability
        updates invalidate them like every other warm view.
        """
        self._check_open()
        from ..trees.bidirected import BidirectedTree

        key = (tuple(sorted(int(s) for s in seeds)), int(root),
               getattr(self.graph, "version", 0))
        with self._state_lock:
            tree = self._tree_cache.get(key)
            if tree is None:
                tree = BidirectedTree(self.graph, key[0], root=int(root))
                if len(self._tree_cache) >= 16:
                    self._tree_cache.clear()
                self._tree_cache[key] = tree
            return tree

    # ------------------------------------------------------------------
    # Runtime
    # ------------------------------------------------------------------
    def resolve_budget(self, query: Query) -> SamplingBudget:
        """The budget a query runs under (its own, else the session's)."""
        return query.budget if query.budget is not None else self.default_budget

    def _effective_workers(self, queries: Sequence[Query]) -> int:
        from ..core.parallel import resolve_sampler_workers

        best = 1
        for query in queries:
            budget = self.resolve_budget(query)
            best = max(best, resolve_sampler_workers(budget.workers))
        return best

    def ensure_runtime(self, workers: Optional[int] = None) -> bool:
        """Pre-warm the shared-memory pool for ``workers`` (fork platforms).

        Returns whether a pool is (now) running for this graph; serial
        configurations and fork-less platforms return False and stay
        serial — queries then fall back transparently.
        """
        self._check_open()
        from ..core.parallel import (
            fork_available,
            get_runtime,
            resolve_sampler_workers,
        )

        effective = resolve_sampler_workers(workers)
        if effective <= 1 or not fork_available():
            return False
        get_runtime(self.graph, effective)
        return True

    def runtime_health(self):
        """Supervision snapshot of this graph's worker pool, or ``None``.

        ``None`` means no pool is live for this session's graph (serial
        configurations, fork-less platforms, pre-warm-up, post-close) —
        which callers should read as "healthy, trivially": there are no
        workers to lose.  A ``hosts=`` session reports its distributed
        runtime instead, with per-host counters.  See
        :class:`~repro.core.parallel.RuntimeHealth`.
        """
        from ..core.parallel import runtime_health

        return runtime_health(self.graph)

    def effective_parallelism(self, query=None) -> int:
        """How many sampling workers a query's chunks spread across.

        The admission cost model divides sampling work by this: the
        distributed runtime's summed remote capacity when hosts are
        attached (and healthy), else the query budget's resolved local
        worker count.  Always >= 1.
        """
        if self._dist is not None and self._dist.active:
            capacity = int(self._dist.capacity)
            if capacity > 0:
                return capacity
        from ..core.parallel import resolve_sampler_workers

        budget = (
            self.resolve_budget(query) if query is not None
            else self.default_budget
        )
        return max(1, resolve_sampler_workers(budget.workers))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _cache_key(self, query: Query):
        """The result-cache key for ``query`` (None when uncacheable)."""
        if self.cache is None or query.rng_seed is None:
            return None
        from ..core.parallel import resolve_sampler_workers

        workers = resolve_sampler_workers(self.resolve_budget(query).workers)
        if self._dist is not None:
            # A hosts= session always samples through the chunked path,
            # whose stream equals any local workers>1 run — key it as
            # such so persisted entries stay honest about which stream
            # they hold (host *count* never changes the stream).
            workers = max(2, workers)
        return ResultCache.key_for(
            self.fingerprint_for(query),
            getattr(self.graph, "version", 0),
            query,
            workers,
        )

    def _run_admitted(
        self,
        query: Query,
        rng: Optional[np.random.Generator] = None,
        exec_session=None,
        started: Optional[float] = None,
    ) -> QueryResult:
        """Cache-check, execute and stamp one already-admitted query.

        ``exec_session`` is the object handlers see — the session itself
        on the serial path, a :class:`_SessionLane` on lane threads.

        ``started`` is the ``perf_counter`` instant the query's
        ``deadline_ms`` counts from — batch submission time in
        :meth:`run_many`, so a deadline covers queue wait, not just
        compute.  The deadline is checked before running (a query whose
        budget is already spent is not started at all) and after (a
        result that arrives late is still cached — the work is valid and
        a retry may hit it — but :exc:`QueryTimeout` is raised, carrying
        the structured timeout envelope instead).
        """
        deadline_ms = getattr(query, "deadline_ms", None)
        if started is None:
            started = time.perf_counter()
        if deadline_ms is not None:
            elapsed = (time.perf_counter() - started) * 1000.0
            if elapsed >= deadline_ms:
                raise QueryTimeout(query, deadline_ms, elapsed)
        key = self._cache_key(query)
        if self.cache is not None:
            hit = self.cache.get(key)
            if hit is not None:
                with self._stats_lock:
                    self.queries_run += 1
                return hit
        handler = get_algorithm(query.algorithm)
        if query.rng_seed is not None:
            rng = np.random.default_rng(query.rng_seed)
        elif rng is None:
            rng = np.random.default_rng()
        target = self if exec_session is None else exec_session
        start = time.perf_counter()
        result = handler(target, query, rng)
        result.timings["total"] = time.perf_counter() - start
        result.query = query.to_dict()
        result.fingerprint = self.fingerprint_for(query)
        health = self.runtime_health()
        if health is not None and health.degraded:
            # Honest provenance: this envelope was computed on the serial
            # fallback of a degraded runtime.  Bit-identical to the
            # healthy path — only latency differed — so it is still
            # cacheable, marker included.
            result.extra["degraded"] = True
        with self._stats_lock:
            self.queries_run += 1
        if self.cache is not None:
            self.cache.put(key, result)
        if deadline_ms is not None:
            elapsed = (time.perf_counter() - started) * 1000.0
            if elapsed > deadline_ms:
                raise QueryTimeout(query, deadline_ms, elapsed)
        return result

    def _guarded(
        self,
        query: Query,
        rng: Optional[np.random.Generator] = None,
        exec_session=None,
        started: Optional[float] = None,
    ) -> QueryResult:
        """:meth:`_run_admitted`, with failures folded into envelopes.

        The ``on_error="envelope"`` execution arm: a deadline miss
        becomes the ``"timeout"`` envelope, an algorithm exception the
        ``"failed"`` one — positions in a batch stay aligned and one bad
        query cannot sink its batch.
        """
        try:
            return self._run_admitted(
                query, rng=rng, exec_session=exec_session, started=started
            )
        except QueryTimeout as exc:
            return exc.result
        except Exception as exc:
            return failure_result(query, exc)

    def run(
        self, query: Query, rng: Optional[np.random.Generator] = None
    ) -> QueryResult:
        """Answer one typed query on the warm state.

        RNG resolution: an explicit ``query.rng_seed`` always wins (the
        reproducible, serializable form); otherwise the ambient ``rng``
        is consumed — the legacy free functions pass their caller's live
        generator through, which is what keeps wrapper results
        bit-for-bit identical to the pre-session API; with neither, the
        query runs on fresh OS entropy.

        With an admission policy installed, a rejected query raises
        :exc:`AdmissionRejected` before any sampling; "queue"-classed
        queries simply run (there is no batch to defer them behind).
        A query carrying ``deadline_ms`` raises :exc:`QueryTimeout` when
        the deadline elapses (measured from this call), whose
        ``.envelope`` is the structured ``"timeout"`` shape.
        """
        self._check_open()
        started = time.perf_counter()
        if self.admission is not None:
            decision = self.admission.decide(self, query)
            if decision.action == REJECT:
                raise AdmissionRejected(query, decision)
        return self._run_admitted(query, rng=rng, started=started)

    def _lane_run(
        self, query: Query, started: Optional[float] = None, guard: bool = False
    ) -> QueryResult:
        runner = self._guarded if guard else self._run_admitted
        return runner(query, exec_session=_SessionLane(self), started=started)

    def _lanes(self) -> ThreadPoolExecutor:
        with self._state_lock:
            if self._lane_pool is None:
                self._lane_pool = ThreadPoolExecutor(
                    max_workers=self.overlap_lanes,
                    thread_name_prefix="repro-lane",
                )
            return self._lane_pool

    def run_iter(
        self,
        queries: Iterable[Query],
        rng: Optional[np.random.Generator] = None,
        on_error: str = "raise",
    ) -> Iterator[QueryResult]:
        """Yield each query's result as soon as it completes, in order.

        The streaming form of :meth:`run_many` (serial execution, same
        RNG semantics, pool pre-warmed once) — what ``repro query
        --json`` uses to emit NDJSON per result instead of buffering the
        batch.  With ``on_error="envelope"``, a deadline miss or
        algorithm failure yields its structured envelope and the stream
        continues; deadlines count from each query's own start (there is
        no batch wave to wait behind).
        """
        self._check_open()
        if on_error not in ("raise", "envelope"):
            raise ValueError("on_error must be 'raise' or 'envelope'")
        batch = list(queries)
        workers = self._effective_workers(batch)
        if workers > 1:
            self.ensure_runtime(workers)
        for query in batch:
            if on_error == "raise":
                yield self.run(query, rng=rng)
                continue
            try:
                yield self.run(query, rng=rng)
            except QueryTimeout as exc:
                yield exc.result
            except AdmissionRejected as exc:
                yield rejection_result(query, exc.decision)
            except Exception as exc:
                yield failure_result(query, exc)

    def run_many(
        self,
        queries: Iterable[Query],
        rng: Optional[np.random.Generator] = None,
        overlap: object = "auto",
        on_reject: str = "raise",
        on_error: str = "raise",
    ) -> List[QueryResult]:
        """Answer a batch of queries on shared warm state, overlapped.

        The worker pool is pre-warmed once for the largest worker count
        any query in the batch asks for, so the first parallel query does
        not pay pool startup.

        **Overlap** (``overlap="auto"``, the default): queries with an
        explicit ``rng_seed`` are independent — each runs on its own
        reproducible stream — so the batch pipelines them onto the lane
        pool: every lane samples through its thread-local engine, chunked
        sampling from all lanes interleaves on the one shared-memory
        worker pool (tag-multiplexed), and one query's selection phase
        overlaps the others' sampling.  Results are identical to the
        serial path, in input order.  Identical cacheable queries in one
        batch are computed once and share the envelope.  ``overlap=False``
        forces the serial path.

        Queries *without* a seed always run serially, consuming the
        ambient ``rng`` in batch order (or fresh entropy when none is
        given) — exactly the pre-overlap semantics, since seeded queries
        never touch the ambient stream.

        **Admission** (when a policy is installed): rejected queries
        raise by default; ``on_reject="envelope"`` slots a structured
        rejection envelope into their position instead.  "Queue"-classed
        *seeded* queries drain asynchronously: they are queued on the
        lane pool behind the admitted wave and start as soon as a lane
        frees up, never before an admitted query would have used it
        (envelopes are unchanged — seeded queries are pure functions of
        their stream).  Unseeded queued queries still run at the batch
        tail, preserving their ambient-RNG order.

        **Failures** (``on_error``): by default a deadline miss raises
        :exc:`QueryTimeout` and an algorithm exception propagates, both
        sinking the batch; ``on_error="envelope"`` slots the structured
        ``"timeout"`` / ``"failed"`` envelope into the failing query's
        position and the rest of the batch completes — the serving front
        end's mode.  Per-query ``deadline_ms`` counts from batch
        submission, so it bounds queue wait behind slower queries too.
        """
        self._check_open()
        if on_reject not in ("raise", "envelope"):
            raise ValueError("on_reject must be 'raise' or 'envelope'")
        if on_error not in ("raise", "envelope"):
            raise ValueError("on_error must be 'raise' or 'envelope'")
        started = time.perf_counter()
        batch = list(queries)
        if not batch:
            return []
        workers = self._effective_workers(batch)
        if workers > 1:
            self.ensure_runtime(workers)

        results: List[Optional[QueryResult]] = [None] * len(batch)
        admitted: List[int] = []
        deferred: List[int] = []
        for i, query in enumerate(batch):
            get_algorithm(query.algorithm)  # unknown algorithms fail the batch up front
            if self.admission is None:
                admitted.append(i)
                continue
            decision = self.admission.decide(self, query)
            if decision.action == REJECT:
                if on_reject == "raise":
                    raise AdmissionRejected(query, decision)
                results[i] = rejection_result(query, decision)
            elif decision.action == QUEUE:
                deferred.append(i)
            else:
                admitted.append(i)

        lane_idx = [i for i in admitted if batch[i].rng_seed is not None]
        if not overlap or len(lane_idx) < 2:
            lane_idx = []
        serial_idx = [i for i in admitted if i not in set(lane_idx)]
        # Async admission drain: queued *seeded* queries go onto the lane
        # pool behind the admitted submissions — the FIFO executor starts
        # each one exactly when the pool drains below the lane capacity,
        # instead of waiting for the whole batch tail.  Seeded queries
        # are pure functions of their own stream, so starting them early
        # cannot change any envelope; unseeded deferred queries keep the
        # strict tail order because they consume the ambient ``rng``.
        drain_idx = (
            [i for i in deferred if batch[i].rng_seed is not None]
            if overlap else []
        )
        tail_idx = [i for i in deferred if i not in set(drain_idx)]

        guard = on_error == "envelope"
        runner = self._guarded if guard else self._run_admitted
        if lane_idx or drain_idx:
            pool = self._lanes()
            shared: Dict[tuple, Future] = {}
            pending: List[tuple] = []
            for i in lane_idx + drain_idx:
                key = self._cache_key(batch[i])
                future = shared.get(key) if key is not None else None
                if future is None:
                    future = pool.submit(
                        self._lane_run, batch[i], started, guard
                    )
                    if key is not None:
                        shared[key] = future
                pending.append((i, future))
            for i, future in pending:
                results[i] = future.result()
        for i in serial_idx:
            results[i] = runner(batch[i], rng=rng, started=started)
        for i in tail_idx:
            results[i] = runner(batch[i], rng=rng, started=started)
        return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """JSON-serializable session counters for the serving front end."""
        out: Dict[str, object] = {
            "queries_run": self.queries_run,
            "graph": {
                "n": int(self.graph.n),
                "m": int(self.graph.m),
                "version": int(getattr(self.graph, "version", 0)),
            },
        }
        storage_info = getattr(self.graph, "storage_info", None)
        if storage_info is not None:
            # Capacity planning: backend (mmap vs memory), logical array
            # bytes, and how much of that is actually resident on the
            # process heap (≈0 for pristine store-backed graphs).
            out["storage"] = storage_info()
        if self.cache is not None:
            out["cache"] = self.cache.stats()
        if self.admission is not None:
            out["admission"] = self.admission.to_dict()
        health = self.runtime_health()
        if health is not None:
            out["runtime"] = health.to_dict()
        return out
