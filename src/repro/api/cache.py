"""Fingerprint-keyed result cache for the serving tier.

Interactive traffic repeats itself: the same boost/seed/eval queries are
issued again and again against a slowly-changing graph.  A
:class:`ResultCache` makes the repeat near-free by memoizing whole
:class:`~repro.api.result.QueryResult` envelopes, keyed on

``(query fingerprint, graph version, model, rng_seed, effective workers)``

* the **fingerprint** already binds algorithm, parameters, budget
  (minus the ``workers`` execution hint), diffusion model, RNG seed and
  the graph's probability signature, so it is the semantic identity of
  the query,
* the **graph version** (:attr:`repro.graphs.DiGraph.version`) is the
  invalidation signal: any in-place probability update bumps it and
  every cached entry for the old graph silently becomes unreachable,
* the **effective worker count** is in the key (but *not* the
  fingerprint) because the samplers draw a different — equally valid —
  stream through the chunked parallel path than through the serial one;
  caching across worker counts would return a result the uncached run
  could not reproduce.

Only queries with an explicit ``rng_seed`` are cacheable: without one
the query consumes ambient entropy and two runs are *supposed* to
differ.  Entries are bounded LRU; hits move an entry to the back, and
inserting past ``capacity`` evicts the front.  Hit/miss/eviction
counters are exposed for the serving front end's ``/stats``.

The cache stores (and returns) the original ``QueryResult`` object —
envelope-identical to the uncached run by construction, including its
recorded timings.  Treat results as read-only, which every consumer of
the session API already does.  Thread-safe: the overlapped ``run_many``
lanes and the HTTP front end share one instance.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from .result import QueryResult

__all__ = ["ResultCache"]

CacheKey = Tuple[str, int, str, int, int]


class ResultCache:
    """Bounded LRU cache of :class:`QueryResult` envelopes.

    Parameters
    ----------
    capacity:
        Maximum number of cached envelopes; the least recently used is
        evicted on overflow.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, QueryResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def key_for(
        fingerprint: str, graph_version: int, query, workers: int
    ) -> Optional[CacheKey]:
        """The cache key of a stamped query, or ``None`` if uncacheable.

        ``None`` means the query carries no ``rng_seed`` — its answer is
        entropy-dependent and must be recomputed every time.
        """
        if query.rng_seed is None:
            return None
        return (
            fingerprint,
            int(graph_version),
            query.model,
            int(query.rng_seed),
            int(workers),
        )

    def get(self, key: Optional[CacheKey]) -> Optional[QueryResult]:
        """The cached envelope under ``key`` (bumped to most-recent), or
        ``None`` on a miss.  ``key=None`` (uncacheable) counts as a miss
        of its own kind and is not tallied."""
        if key is None:
            return None
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result

    def put(self, key: Optional[CacheKey], result: QueryResult) -> None:
        """Insert ``result`` under ``key`` (no-op for uncacheable keys)."""
        if key is None:
            return
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    # Persistence (NDJSON snapshots across server restarts)
    # ------------------------------------------------------------------
    def save(self, path) -> int:
        """Snapshot every entry to ``path`` as NDJSON; returns the count.

        One line per entry, LRU order (least recent first, so a later
        :meth:`load` reconstructs the same eviction order)::

            {"key": [fingerprint, graph_version, model, rng_seed,
                     workers],
             "result": {...QueryResult.to_dict()...}}

        The write is atomic (temp file + rename): a SIGTERM snapshot
        that dies mid-write never truncates the previous snapshot.
        """
        import json
        import os

        path = str(path)
        with self._lock:
            lines = [
                json.dumps(
                    {"key": list(key), "result": result.to_dict()},
                    separators=(",", ":"),
                )
                for key, result in self._entries.items()
            ]
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + ("\n" if lines else ""))
        os.replace(tmp, path)
        return len(lines)

    def load(self, path, graph_version: Optional[int] = None) -> Dict[str, int]:
        """Merge a :meth:`save` snapshot into the cache.

        ``graph_version`` (when given) is the currently-served graph's
        version: entries snapshotted under any other version are
        **dropped** — their results describe probabilities that no
        longer exist, and version-keyed lookups could never hit them
        anyway.  Returns ``{"loaded": ..., "dropped": ...}``.  Entries
        beyond capacity evict LRU as usual; a missing file loads
        nothing.
        """
        import json
        import os

        loaded = dropped = 0
        if not os.path.exists(str(path)):
            return {"loaded": 0, "dropped": 0}
        with open(str(path), "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                entry = json.loads(line)
                raw_key = entry["key"]
                if len(raw_key) != 5:
                    dropped += 1
                    continue
                key: CacheKey = (
                    str(raw_key[0]), int(raw_key[1]), str(raw_key[2]),
                    int(raw_key[3]), int(raw_key[4]),
                )
                if graph_version is not None and key[1] != int(graph_version):
                    dropped += 1
                    continue
                result = QueryResult.from_dict(entry["result"])
                with self._lock:
                    self._entries[key] = result
                    self._entries.move_to_end(key)
                    while len(self._entries) > self.capacity:
                        self._entries.popitem(last=False)
                        self.evictions += 1
                loaded += 1
        return {"loaded": loaded, "dropped": dropped}

    def stats(self) -> Dict[str, Any]:
        """JSON-serializable counters for the serving front end."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": round(self.hits / total, 4) if total else 0.0,
            }
