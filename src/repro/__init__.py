"""repro — reproduction of "Boosting Information Spread: An Algorithmic Approach".

Lin, Chen & Lui (ICDE 2017).  The package provides:

* :mod:`repro.api` — the session-based query API: a warm
  :class:`Session` facade over the engine, the shared-memory parallel
  runtime and every algorithm, driven by typed queries,
* :mod:`repro.graphs` — compact directed influence graphs and generators,
* :mod:`repro.engine` — the unified vectorized sampling + selection
  substrate (lane kernels, coverage index),
* :mod:`repro.diffusion` — the influence boosting model and Monte Carlo
  simulation,
* :mod:`repro.im` — the IMM/SSA influence-maximization substrate (RR-sets),
* :mod:`repro.core` — PRR-graphs, PRR-Boost and PRR-Boost-LB, the
  parallel runtime,
* :mod:`repro.trees` — exact computation, Greedy-Boost and DP-Boost on
  bidirected trees,
* :mod:`repro.baselines` — the heuristic baselines of Section VII,
* :mod:`repro.datasets` — synthetic stand-ins for the evaluation networks,
* :mod:`repro.experiments` — harnesses reproducing every table and figure.

Quickstart — open one :class:`Session` per graph and submit queries; the
engine, worker pool and selection scratch stay warm across them::

    from repro import BoostQuery, EvalQuery, Session, SeedQuery, load_dataset

    graph = load_dataset("digg-like")
    with Session(graph) as session:
        seeds = session.run(SeedQuery(k=20, rng_seed=1)).selected
        boost = session.run(BoostQuery(seeds=seeds, k=50, rng_seed=1))
        delta = session.run(
            EvalQuery(seeds=seeds, boost=boost.selected, rng_seed=1)
        )
        print(boost.selected, delta.estimates["boost"])

Every query answer is a JSON-serializable
:class:`~repro.api.QueryResult`; ``session.run_many([...])`` answers a
batch on one shared worker pool.  The legacy free functions
(:func:`prr_boost`, :func:`imm`, :func:`ssa`, ...) remain available as
thin wrappers over a default throwaway session and return their
historical result objects unchanged.
"""

from .api import (
    AdmissionPolicy,
    AdmissionRejected,
    BoostQuery,
    EvalQuery,
    QueryResult,
    ResultCache,
    SamplingBudget,
    SeedQuery,
    Session,
    TreeQuery,
    algorithm_names,
    estimate_cost,
    query_from_dict,
    register_algorithm,
)
from .baselines import (
    high_degree_global,
    high_degree_local,
    more_seeds_baseline,
    pagerank_baseline,
)
from .core import (
    BoostResult,
    PRRGraph,
    collection_stats,
    derive_params,
    estimate_delta,
    estimate_mu,
    mc_greedy_boost,
    prr_boost,
    prr_boost_lb,
    sample_critical_set,
    sample_prr_graph,
)
from .datasets import load_dataset
from .diffusion import (
    BoostingModel,
    estimate_boost,
    estimate_sigma,
    exact_boost,
    exact_sigma,
    simulate_spread,
)
from .graphs import DiGraph, GraphBuilder
from .im import estimate_influence, imm, random_rr_set, ssa
from .trees import BidirectedTree, dp_boost, greedy_boost
from .trees import delta as tree_delta
from .trees import sigma as tree_sigma

# The paper's reference greedy with Monte-Carlo marginals; exported both
# under its implementation name and the registry key it answers to.
mc_greedy = mc_greedy_boost

__version__ = "1.2.0"

__all__ = [
    # session API
    "Session",
    "SamplingBudget",
    "BoostQuery",
    "SeedQuery",
    "EvalQuery",
    "TreeQuery",
    "QueryResult",
    "query_from_dict",
    "register_algorithm",
    "algorithm_names",
    # serving tier
    "ResultCache",
    "AdmissionPolicy",
    "AdmissionRejected",
    "estimate_cost",
    # graphs + model
    "DiGraph",
    "GraphBuilder",
    "BoostingModel",
    "simulate_spread",
    "estimate_sigma",
    "estimate_boost",
    "exact_sigma",
    "exact_boost",
    # influence maximization
    "imm",
    "ssa",
    "random_rr_set",
    "estimate_influence",
    # PRR-Boost core
    "PRRGraph",
    "sample_prr_graph",
    "sample_critical_set",
    "prr_boost",
    "prr_boost_lb",
    "mc_greedy",
    "mc_greedy_boost",
    "BoostResult",
    "estimate_delta",
    "estimate_mu",
    "collection_stats",
    "derive_params",
    # trees
    "BidirectedTree",
    "greedy_boost",
    "dp_boost",
    "tree_sigma",
    "tree_delta",
    # baselines + data
    "high_degree_global",
    "high_degree_local",
    "pagerank_baseline",
    "more_seeds_baseline",
    "load_dataset",
    "__version__",
]
