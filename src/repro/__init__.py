"""repro — reproduction of "Boosting Information Spread: An Algorithmic Approach".

Lin, Chen & Lui (ICDE 2017).  The package provides:

* :mod:`repro.graphs` — compact directed influence graphs and generators,
* :mod:`repro.diffusion` — the influence boosting model and Monte Carlo
  simulation,
* :mod:`repro.im` — the IMM influence-maximization substrate (RR-sets),
* :mod:`repro.core` — PRR-graphs, PRR-Boost and PRR-Boost-LB,
* :mod:`repro.trees` — exact computation, Greedy-Boost and DP-Boost on
  bidirected trees,
* :mod:`repro.baselines` — the heuristic baselines of Section VII,
* :mod:`repro.datasets` — synthetic stand-ins for the evaluation networks,
* :mod:`repro.experiments` — harnesses reproducing every table and figure.

Quickstart::

    import numpy as np
    from repro import load_dataset, imm, prr_boost, estimate_boost

    rng = np.random.default_rng(1)
    graph = load_dataset("digg-like")
    seeds = imm(graph, 20, rng).chosen
    result = prr_boost(graph, seeds, k=50, rng=rng)
    print(estimate_boost(graph, seeds, result.boost_set, rng, runs=2000))
"""

from .baselines import (
    high_degree_global,
    high_degree_local,
    more_seeds_baseline,
    pagerank_baseline,
)
from .core import (
    BoostResult,
    PRRGraph,
    collection_stats,
    derive_params,
    estimate_delta,
    estimate_mu,
    prr_boost,
    prr_boost_lb,
    sample_critical_set,
    sample_prr_graph,
)
from .datasets import load_dataset
from .diffusion import (
    BoostingModel,
    estimate_boost,
    estimate_sigma,
    exact_boost,
    exact_sigma,
    simulate_spread,
)
from .graphs import DiGraph, GraphBuilder
from .im import imm, random_rr_set
from .trees import BidirectedTree, dp_boost, greedy_boost
from .trees import delta as tree_delta
from .trees import sigma as tree_sigma

__version__ = "1.0.0"

__all__ = [
    "DiGraph",
    "GraphBuilder",
    "BoostingModel",
    "simulate_spread",
    "estimate_sigma",
    "estimate_boost",
    "exact_sigma",
    "exact_boost",
    "imm",
    "random_rr_set",
    "PRRGraph",
    "sample_prr_graph",
    "sample_critical_set",
    "prr_boost",
    "prr_boost_lb",
    "BoostResult",
    "estimate_delta",
    "estimate_mu",
    "collection_stats",
    "derive_params",
    "BidirectedTree",
    "greedy_boost",
    "dp_boost",
    "tree_sigma",
    "tree_delta",
    "high_degree_global",
    "high_degree_local",
    "pagerank_baseline",
    "more_seeds_baseline",
    "load_dataset",
    "__version__",
]
