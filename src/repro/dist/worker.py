"""Host-side server of the distributed sampling runtime.

``repro dist-worker --graph-store graph.rpgs --port 9123`` runs one of
these per worker host.  The worker opens its replica of the graph
locally — for a store-backed graph that is an mmap open with zero
warm-up, because the store persists the engine precompute — and serves
one coordinator connection at a time: handshake (fingerprint + store
digest validation), then a stream of ``chunks`` assignments, each
answered with one ``result`` frame per chunk.

Chunks are executed through
:func:`repro.core.parallel.run_chunks_local`, i.e. the host's own
shared-memory :class:`~repro.core.parallel.SharedGraphRuntime` when it
has cores to spare — so a cluster multiplies cores × hosts while every
chunk remains the pure ``(chunk_id, seed)`` function the determinism
contract needs.  The local pool stays warm across coordinator sessions.
"""

from __future__ import annotations

import os
import socket
import threading
from typing import Any, Dict, Optional

from ..core.parallel import (
    _resolve_workers,
    fork_available,
    run_chunks_local,
)
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    graph_fingerprint,
    publishable_store,
    recv_msg,
    send_msg,
    store_digest,
)

__all__ = ["serve_worker"]


def _resolve_local_workers(workers: Optional[int]) -> int:
    """The chunk parallelism this host contributes: the explicit value,
    else one worker per core (capped like the local runtime), serial on
    fork-less platforms."""
    if not fork_available():
        return 1
    if workers is not None:
        return max(1, int(workers))
    return _resolve_workers(None)


def _decode_params(kind: str, params) -> tuple:
    """Rebuild the chunk-task params tuple from its JSON form."""
    if kind == "prr":
        seed_set, k = params
        return (tuple(int(s) for s in seed_set), int(k))
    if kind == "critical":
        (seed_set,) = params
        return (tuple(int(s) for s in seed_set),)
    if kind == "rr":
        return ()
    raise ProtocolError(f"unknown task kind: {kind!r}")


def _serve_connection(conn, graph, identity, workers: int, stats,
                      stop: Optional[threading.Event] = None) -> None:
    """One coordinator session: handshake, then chunk batches until EOF.

    ``stop`` (when given) is polled between frames; setting it drops the
    connection mid-session — the coordinator sees EOF and re-assigns any
    outstanding chunks, which is exactly how the fault-injection tests
    simulate a worker-host kill.
    """

    def _next_msg():
        import select

        while True:
            if stop is not None and stop.is_set():
                return None
            readable, _w, _x = select.select([conn], [], [], 0.25)
            if readable:
                return recv_msg(conn)

    msg = _next_msg()
    if msg is None:
        return
    header, _arrays = msg
    if header.get("type") != "hello":
        send_msg(conn, {"type": "error", "detail": "expected hello"})
        return
    if header.get("protocol") != PROTOCOL_VERSION:
        send_msg(conn, {
            "type": "error",
            "detail": f"protocol {header.get('protocol')} != "
                      f"{PROTOCOL_VERSION}",
        })
        return
    for key in ("fingerprint", "store_digest"):
        theirs, ours = header.get(key), identity.get(key)
        if theirs is not None and ours is not None and theirs != ours:
            send_msg(conn, {
                "type": "error",
                "detail": f"{key} mismatch: coordinator {theirs!r} != "
                          f"worker {ours!r}",
            })
            stats["rejected"] += 1
            return
    send_msg(conn, {
        "type": "welcome",
        "protocol": PROTOCOL_VERSION,
        "pid": os.getpid(),
        "workers": workers,
        "cores": os.cpu_count() or 1,
        "fingerprint": identity.get("fingerprint"),
    })
    stats["sessions"] += 1
    while True:
        msg = _next_msg()
        if msg is None:
            return
        header, _arrays = msg
        mtype = header.get("type")
        if mtype == "bye":
            return
        if mtype != "chunks":
            raise ProtocolError(f"unexpected message type {mtype!r}")
        tag = header["tag"]
        kind = header["kind"]
        params = _decode_params(kind, header.get("params", []))
        jobs = [
            (int(cid), int(seed), int(size))
            for cid, seed, size in header["jobs"]
        ]
        try:
            parts = run_chunks_local(graph, kind, jobs, params, workers)
        except Exception as exc:  # deterministic failures fail fast
            send_msg(conn, {
                "type": "chunk_error",
                "tag": tag,
                "cid": jobs[0][0] if jobs else -1,
                "detail": f"{type(exc).__name__}: {exc}",
            })
            stats["errors"] += 1
            continue
        for (cid, _seed, _size), arrays in zip(jobs, parts):
            send_msg(
                conn, {"type": "result", "tag": tag, "cid": cid}, arrays
            )
            stats["chunks"] += 1


def serve_worker(
    graph,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: Optional[int] = None,
    *,
    max_sessions: Optional[int] = None,
    ready=None,
    stop: Optional[threading.Event] = None,
) -> Dict[str, Any]:
    """Serve ``graph`` as one distributed-sampling worker host.

    Blocks until ``max_sessions`` coordinator sessions have been served
    (``None`` = forever), ``stop`` is set, or the thread is interrupted;
    returns the session/chunk counters.  ``ready`` (when given) is
    called once with ``{"host", "port", "workers"}`` as soon as the
    socket listens — with ``port=0`` that is how callers learn the
    ephemeral port.
    """
    workers = _resolve_local_workers(workers)
    store = publishable_store(graph)
    identity = {
        "fingerprint": graph_fingerprint(graph),
        "store_digest": store_digest(store) if store else None,
    }
    stats: Dict[str, Any] = {
        "sessions": 0, "chunks": 0, "errors": 0, "rejected": 0,
        "workers": workers,
    }
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((host, port))
        server.listen(4)
        server.settimeout(0.2)
        bound = server.getsockname()
        if ready is not None:
            ready({"host": bound[0], "port": bound[1], "workers": workers})
        served = 0
        while max_sessions is None or served < max_sessions:
            if stop is not None and stop.is_set():
                break
            try:
                conn, _addr = server.accept()
            except socket.timeout:
                continue
            served += 1
            try:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                _serve_connection(conn, graph, identity, workers, stats,
                                  stop=stop)
            except (ProtocolError, OSError):
                # A torn connection (coordinator died mid-stream) ends
                # the session; the worker stays up for the next one.
                stats["errors"] += 1
            finally:
                conn.close()
    finally:
        server.close()
    return stats
