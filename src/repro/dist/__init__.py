"""Multi-host distributed sampling runtime.

The single-host ceiling of :mod:`repro.core.parallel` (local cores) and
:mod:`repro.storage` (one machine's page cache) is lifted by sharding
sample chunks across worker *hosts*:

* :mod:`repro.dist.protocol` — the length-prefixed binary wire format:
  handshake with graph fingerprint + store digest, chunk assignment,
  raw-array result frames (the same flat payload encodings the
  shared-memory runtime ships between processes),
* :mod:`repro.dist.worker` — the host-side server (``repro
  dist-worker --graph-store ...``): opens the replicated graph store
  locally (mmap, zero warm-up via the persisted engine precompute) and
  runs assigned chunks through its own local
  :class:`~repro.core.parallel.SharedGraphRuntime`,
* :mod:`repro.dist.coordinator` — :class:`DistributedRuntime`, the
  client-side coordinator that scatters chunks, supervises hosts
  (bounded re-assignment on loss, degraded fallback to the local
  runtime) and merges results deterministically.

The determinism contract is the same ``(count, master_seed)`` purity the
local runtime guarantees: every chunk is a pure function of its
``(chunk_id, seed)``, the gatherer restores submission order, so results
are bit-identical to the serial and single-host paths regardless of host
count, chunk interleaving, or which host computed what.
"""

from .coordinator import DistributedRuntime, parse_hosts
from .protocol import graph_fingerprint, store_digest
from .worker import serve_worker

__all__ = [
    "DistributedRuntime",
    "parse_hosts",
    "graph_fingerprint",
    "store_digest",
    "serve_worker",
]
