"""Coordinator side of the distributed sampling runtime.

:class:`DistributedRuntime` satisfies the same duck-typed runtime
interface the chunk executor in :mod:`repro.core.parallel` dispatches to
(``submit``/``gather``/``run``/``health``/``shutdown``), but scatters
chunk jobs over TCP to remote worker hosts instead of local fork
workers:

* **Scatter** — each host gets a sliding window of chunks proportional
  to the worker capacity it reported at handshake, refilled as results
  stream back, so fast hosts naturally take more of the tail (the same
  dynamic balance the local runtime's shared queue gives).
* **Deterministic merge** — results are stashed by ``chunk_id`` and
  reassembled in submission order, so the merged payload is
  bit-identical to the serial and single-host paths regardless of host
  count, chunk interleaving, or which host computed what.
* **Supervision** (the host-level analogue of the local pool's worker
  supervision) — a lost connection re-assigns that host's outstanding
  chunks to the survivors, each chunk at most ``max_chunk_retries``
  times; with no hosts left the runtime **degrades**: remaining and
  future chunks run on the local runtime instead, results unchanged.

The runtime is bound to a graph with
:func:`repro.core.parallel.bind_distributed_runtime` (the
``Session(hosts=...)`` constructor does this), after which every
chunked sampling entry point routes through it transparently.
"""

from __future__ import annotations

import socket
import threading
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.parallel import (
    MAX_TASK_RETRIES,
    RuntimeHealth,
    _resolve_workers,
    run_chunks_local,
)
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    graph_fingerprint,
    publishable_store,
    recv_msg,
    send_msg,
    store_digest,
)

__all__ = ["DistributedRuntime", "parse_hosts"]

# Handshake must complete within this; after it, reads block until the
# host answers or the connection drops (liveness is EOF-driven, bounded
# by the OS keepalive/connection teardown).
_HANDSHAKE_TIMEOUT = 10.0

HostSpec = Union[str, Tuple[str, int]]


def parse_hosts(hosts: Union[str, Sequence[HostSpec]]) -> List[Tuple[str, int]]:
    """Normalize ``"h1:p1,h2:p2"`` / ``["h:p", (h, p)]`` to (host, port)
    pairs."""
    if isinstance(hosts, str):
        hosts = [h for h in hosts.split(",") if h.strip()]
    out: List[Tuple[str, int]] = []
    for spec in hosts:
        if isinstance(spec, str):
            host, _sep, port = spec.rpartition(":")
            if not host:
                raise ValueError(f"host spec {spec!r} is not host:port")
            out.append((host.strip(), int(port)))
        else:
            host, port = spec
            out.append((str(host), int(port)))
    if not out:
        raise ValueError("no worker hosts given")
    return out


class _Host:
    """One connected worker host: its socket, capacity and counters."""

    def __init__(self, addr: Tuple[str, int], sock: socket.socket,
                 workers: int) -> None:
        self.addr = addr
        self.sock = sock
        self.workers = max(1, int(workers))
        # Chunks in flight at once: enough to keep every remote core busy
        # plus a refill margin that hides one round-trip.
        self.window = 2 * self.workers + 2
        self.send_lock = threading.Lock()
        self.alive = True
        self.outstanding: Dict[Tuple[int, int], tuple] = {}
        self.chunks_done = 0
        self.chunks_lost = 0
        self.reader: Optional[threading.Thread] = None

    @property
    def label(self) -> str:
        return f"{self.addr[0]}:{self.addr[1]}"


class DistributedRuntime:
    """Shard chunk jobs across worker hosts; merge deterministically.

    Parameters
    ----------
    graph:
        The coordinator-side graph (used for the handshake fingerprint
        and as the degraded fallback's sampling substrate).
    hosts:
        Worker endpoints — ``"host:port,host:port"`` or a sequence of
        specs; every host must be serving the same graph replica
        (``repro dist-worker``) or construction fails.
    fallback_workers:
        Local parallelism of the degraded path (default: one per core,
        like the local runtime).
    max_chunk_retries:
        Re-assignments a single chunk survives before the whole
        submission fails (mirrors the local pool's task-retry bound).
    """

    def __init__(
        self,
        graph,
        hosts: Union[str, Sequence[HostSpec]],
        fallback_workers: Optional[int] = None,
        connect_timeout: float = _HANDSHAKE_TIMEOUT,
        max_chunk_retries: int = MAX_TASK_RETRIES,
    ) -> None:
        self.graph = graph
        self.max_chunk_retries = int(max_chunk_retries)
        self._fallback_workers = (
            _resolve_workers(None) if fallback_workers is None
            else max(1, int(fallback_workers))
        )
        self._cv = threading.Condition()
        self._queue: deque = deque()
        self._next_tag = 0
        self._pending: Dict[int, set] = {}
        self._order: Dict[int, List[int]] = {}
        self._stash: Dict[int, Dict[int, List[np.ndarray]]] = {}
        self._specs: Dict[int, tuple] = {}
        self._retries: Dict[Tuple[int, int], int] = {}
        self._failure: Optional[BaseException] = None
        self._degraded = False
        self._closed = False
        self.host_losses = 0
        self.reassignments = 0

        store = publishable_store(graph)
        hello = {
            "type": "hello",
            "protocol": PROTOCOL_VERSION,
            "fingerprint": graph_fingerprint(graph),
            "store_digest": store_digest(store) if store else None,
        }
        self._hosts: List[_Host] = []
        try:
            for addr in parse_hosts(hosts):
                self._hosts.append(
                    self._connect(addr, hello, connect_timeout)
                )
        except Exception:
            self.shutdown()
            raise
        for host in self._hosts:
            host.reader = threading.Thread(
                target=self._reader, args=(host,),
                name=f"repro-dist-{host.label}", daemon=True,
            )
            host.reader.start()

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def _connect(self, addr, hello, timeout) -> _Host:
        sock = socket.create_connection(addr, timeout=timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            send_msg(sock, hello)
            msg = recv_msg(sock)
            if msg is None:
                raise ProtocolError(f"{addr[0]}:{addr[1]} closed during "
                                    "handshake")
            header, _arrays = msg
            if header.get("type") == "error":
                raise ProtocolError(
                    f"{addr[0]}:{addr[1]} refused: {header.get('detail')}"
                )
            if header.get("type") != "welcome":
                raise ProtocolError(
                    f"{addr[0]}:{addr[1]} sent {header.get('type')!r} "
                    "instead of welcome"
                )
            sock.settimeout(None)
            return _Host(tuple(addr), sock, header.get("workers", 1))
        except BaseException:
            sock.close()
            raise

    def _reader(self, host: _Host) -> None:
        """Drain one host's result stream until it drops."""
        try:
            while True:
                msg = recv_msg(host.sock)
                if msg is None:
                    break
                header, arrays = msg
                mtype = header.get("type")
                if mtype == "result":
                    self._on_result(host, header["tag"], header["cid"],
                                    arrays)
                elif mtype == "chunk_error":
                    self._fail(RuntimeError(
                        f"worker host {host.label} failed chunk "
                        f"{header.get('cid')}: {header.get('detail')}"
                    ))
                    break
                else:
                    break
        except (ProtocolError, OSError, ValueError):
            pass
        self._host_lost(host)

    def _on_result(self, host: _Host, tag: int, cid: int,
                   arrays: List[np.ndarray]) -> None:
        with self._cv:
            host.outstanding.pop((tag, cid), None)
            pend = self._pending.get(tag)
            if pend is not None and cid in pend:
                # First answer wins; late duplicates from a half-dead
                # connection (chunk already re-assigned) are dropped —
                # both copies are identical bytes anyway.
                pend.discard(cid)
                self._stash[tag][cid] = arrays
                host.chunks_done += 1
            self._cv.notify_all()
        self._dispatch()

    def _host_lost(self, host: _Host) -> None:
        """Re-queue a dropped host's chunks; degrade when none remain."""
        with self._cv:
            if not host.alive or self._closed:
                return
            host.alive = False
            self.host_losses += 1
            orphans = list(host.outstanding.items())
            host.outstanding.clear()
            host.chunks_lost += len(orphans)
            for task_id, task in orphans:
                tag, cid = task_id
                if cid not in self._pending.get(tag, ()):  # already done
                    continue
                retries = self._retries.get(task_id, 0) + 1
                self._retries[task_id] = retries
                if retries > self.max_chunk_retries:
                    self._failure = RuntimeError(
                        f"chunk {cid} of tag {tag} lost "
                        f"{retries} times (last host {host.label})"
                    )
                    self._cv.notify_all()
                    return
                self.reassignments += 1
                self._queue.appendleft(task)
            if not any(h.alive for h in self._hosts):
                self._degraded = True
            self._cv.notify_all()
        try:
            host.sock.close()
        except OSError:
            pass
        self._dispatch()

    def _fail(self, exc: BaseException) -> None:
        with self._cv:
            if self._failure is None:
                self._failure = exc
            self._cv.notify_all()

    # ------------------------------------------------------------------
    # Scatter
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        """Refill every live host's window from the task queue."""
        with self._cv:
            if self._closed or self._degraded or self._failure is not None:
                return
            # Round-robin one chunk at a time so a batch smaller than one
            # host's window still spreads across every live host; the
            # windows then only cap in-flight depth.
            batches: Dict[int, List[tuple]] = {}
            progress = True
            while self._queue and progress:
                progress = False
                for idx, host in enumerate(self._hosts):
                    if not self._queue:
                        break
                    if not host.alive:
                        continue
                    assigned = len(host.outstanding)
                    if assigned >= host.window:
                        continue
                    task = self._queue.popleft()
                    tag, cid, _seed, _size, _kind, _params = task
                    host.outstanding[(tag, cid)] = task
                    batches.setdefault(idx, []).append(task)
                    progress = True
            assignments = [
                (self._hosts[idx], batch) for idx, batch in batches.items()
            ]
        for host, batch in assignments:
            # Group by tag so each frame carries one (kind, params).
            by_tag: Dict[int, List[tuple]] = {}
            for task in batch:
                by_tag.setdefault(task[0], []).append(task)
            try:
                with host.send_lock:
                    for tag, tasks in by_tag.items():
                        _t, _c, _s, _z, kind, params = tasks[0]
                        send_msg(host.sock, {
                            "type": "chunks",
                            "tag": tag,
                            "kind": kind,
                            "params": list(params),
                            "jobs": [[cid, seed, size]
                                     for _tag, cid, seed, size, _k, _p
                                     in tasks],
                        })
            except (OSError, ValueError):
                self._host_lost(host)

    # ------------------------------------------------------------------
    # Runtime interface
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        return self._degraded

    @property
    def active(self) -> bool:
        """Whether chunk dispatch should route here (open, hosts left)."""
        return not self._closed and not self._degraded

    @property
    def capacity(self) -> int:
        """Summed remote worker capacity (all configured hosts)."""
        return sum(h.workers for h in self._hosts)

    @property
    def alive_capacity(self) -> int:
        return sum(h.workers for h in self._hosts if h.alive)

    def submit(self, kind: str, jobs: Sequence[Tuple[int, int, int]],
               params: tuple) -> int:
        """Queue chunk jobs for the hosts; returns the gather tag."""
        with self._cv:
            if self._closed:
                raise RuntimeError("distributed runtime is shut down")
            tag = self._next_tag
            self._next_tag += 1
            self._order[tag] = [cid for cid, _seed, _size in jobs]
            self._pending[tag] = {cid for cid, _seed, _size in jobs}
            self._stash[tag] = {}
            self._specs[tag] = (
                kind, params,
                {cid: (seed, size) for cid, seed, size in jobs},
            )
            for cid, seed, size in jobs:
                self._queue.append((tag, cid, seed, size, kind, params))
        self._dispatch()
        return tag

    def gather(self, tag: int) -> List[List[np.ndarray]]:
        """Block until every chunk of ``tag`` answered; results in
        submission order.  On degradation the remaining chunks run on
        the local runtime — the merged payload is identical either way.
        """
        while True:
            with self._cv:
                if tag not in self._pending:
                    raise KeyError(f"unknown or already-gathered tag {tag}")
                if self._failure is not None:
                    raise RuntimeError(
                        "distributed sampling failed"
                    ) from self._failure
                if self._closed:
                    raise RuntimeError("distributed runtime is shut down")
                if not self._pending[tag]:
                    break
                if self._degraded:
                    claimed = self._claim_locked(tag)
                else:
                    self._cv.wait(0.2)
                    continue
            if claimed:
                kind, params, _jobs = self._specs[tag]
                parts = run_chunks_local(
                    self.graph, kind, claimed, params,
                    self._fallback_workers,
                )
                with self._cv:
                    for (cid, _seed, _size), arrays in zip(claimed, parts):
                        self._stash[tag][cid] = arrays
                        self._pending[tag].discard(cid)
                    self._cv.notify_all()
        with self._cv:
            order = self._order.pop(tag)
            stash = self._stash.pop(tag)
            self._pending.pop(tag)
            self._specs.pop(tag)
        return [stash[cid] for cid in order]

    def _claim_locked(self, tag: int) -> List[Tuple[int, int, int]]:
        """Claim ``tag``'s unanswered chunks for local execution
        (degraded path).  Rebuilt from the submission spec — complete
        even for a chunk lost in a send race — and purged from the
        queue so nothing runs twice.  Caller holds the lock."""
        _kind, _params, job_specs = self._specs[tag]
        pend = self._pending[tag]
        claimed = [
            (cid, *job_specs[cid]) for cid in self._order[tag] if cid in pend
        ]
        self._queue = deque(
            task for task in self._queue
            if not (task[0] == tag and task[1] in pend)
        )
        return claimed

    def run(self, kind: str, jobs: Sequence[Tuple[int, int, int]],
            params: tuple) -> List[List[np.ndarray]]:
        """submit + gather in one call (what the chunk executor uses)."""
        return self.gather(self.submit(kind, jobs, params))

    def health(self) -> RuntimeHealth:
        """Host-granular supervision snapshot (see
        :class:`~repro.core.parallel.RuntimeHealth`)."""
        with self._cv:
            return RuntimeHealth(
                workers=self.capacity,
                workers_alive=self.alive_capacity,
                restarts=self.host_losses,
                retries=self.reassignments,
                degraded=self._degraded,
                hosts=tuple(
                    {
                        "addr": h.label,
                        "alive": bool(h.alive),
                        "workers": int(h.workers),
                        "chunks_done": int(h.chunks_done),
                        "chunks_lost": int(h.chunks_lost),
                    }
                    for h in self._hosts
                ),
            )

    def shutdown(self) -> None:
        """Close every host connection (idempotent)."""
        with self._cv:
            if self._closed:
                return
            self._closed = True
            self._cv.notify_all()
        for host in getattr(self, "_hosts", []):
            try:
                with host.send_lock:
                    send_msg(host.sock, {"type": "bye"})
            except (OSError, ValueError):
                pass
            try:
                host.sock.close()
            except OSError:
                pass
        for host in getattr(self, "_hosts", []):
            if host.reader is not None:
                host.reader.join(timeout=5.0)
