"""Wire format of the distributed sampling runtime.

Every message is one length-prefixed frame::

    <u32 header_len> <header json> <raw array bytes ...>

The header is a small JSON object carrying ``type`` plus message fields;
its ``arrays`` key is an offset-free table ``[[dtype_str, shape], ...]``
describing the raw, C-contiguous numpy buffers concatenated after it —
the same flat-array payloads :func:`repro.core.parallel._ship_result`
moves between local worker processes, reused here so a remote chunk
result is byte-for-byte the array list the local runtime would have
produced.  Numbers stay exact: seeds and sizes are plain ints (chunk
seeds are ``SeedSequence`` 32-bit words), and array payloads never round
through JSON.

Handshake: the coordinator opens with ``hello`` carrying the protocol
version, a **graph fingerprint** (``n``, ``m`` and the rounded
probability sums — the same graph component the Session fingerprint
uses) and, for store-backed graphs, a **store digest** (header bytes +
file size).  The worker refuses mismatches with an ``error`` frame, so a
stale replica or the wrong store fails loudly at connect time instead of
silently merging samples from a different graph.

Message types
-------------
``hello``        coordinator → worker: version, fingerprint, store digest
``welcome``      worker → coordinator: accepted; host capacity (workers)
``error``        worker → coordinator: handshake refused / fatal failure
``chunks``       coordinator → worker: a slice of chunk jobs to run
``result``       worker → coordinator: one chunk's flat array payload
``chunk_error``  worker → coordinator: a chunk raised (deterministic
                 failures fail fast — retrying elsewhere reproduces them)
``bye``          coordinator → worker: session over, close the connection
"""

from __future__ import annotations

import hashlib
import json
import socket
import struct
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "send_msg",
    "recv_msg",
    "graph_fingerprint",
    "store_digest",
]

PROTOCOL_VERSION = 1

# A header is a few hundred bytes of JSON; anything larger is a corrupt
# stream (or not this protocol at all) and should fail fast rather than
# allocate unbounded buffers.
_MAX_HEADER = 1 << 20

_LEN = struct.Struct("<I")


class ProtocolError(RuntimeError):
    """A malformed frame or a handshake refusal."""


def _recv_exact(sock: socket.socket, nbytes: int) -> Optional[memoryview]:
    """Read exactly ``nbytes``; ``None`` on clean EOF at a frame start."""
    buf = bytearray(nbytes)
    view = memoryview(buf)
    got = 0
    while got < nbytes:
        read = sock.recv_into(view[got:])
        if read == 0:
            if got == 0:
                return None
            raise ProtocolError("connection closed mid-frame")
        got += read
    return memoryview(buf)


def send_msg(
    sock: socket.socket,
    header: Dict[str, Any],
    arrays: Sequence[np.ndarray] = (),
) -> None:
    """Ship one frame: ``header`` (JSON) plus raw array payloads."""
    blobs = [np.ascontiguousarray(a) for a in arrays]
    header = dict(header)
    header["arrays"] = [[a.dtype.str, list(a.shape)] for a in blobs]
    hb = json.dumps(header, separators=(",", ":")).encode("utf-8")
    parts = [_LEN.pack(len(hb)), hb]
    parts.extend(b.tobytes() for b in blobs if b.nbytes)
    sock.sendall(b"".join(parts))


def recv_msg(
    sock: socket.socket,
) -> Optional[Tuple[Dict[str, Any], List[np.ndarray]]]:
    """Read one frame; ``None`` on clean EOF between frames."""
    prefix = _recv_exact(sock, _LEN.size)
    if prefix is None:
        return None
    (hlen,) = _LEN.unpack(prefix)
    if not 0 < hlen <= _MAX_HEADER:
        raise ProtocolError(f"implausible header length {hlen}")
    raw = _recv_exact(sock, hlen)
    if raw is None:
        raise ProtocolError("connection closed mid-frame")
    try:
        header = json.loads(bytes(raw).decode("utf-8"))
    except ValueError as exc:  # pragma: no cover - corrupt peer
        raise ProtocolError(f"undecodable header: {exc}") from exc
    arrays: List[np.ndarray] = []
    for dtype_str, shape in header.get("arrays", ()):
        dt = np.dtype(dtype_str)
        size = int(np.prod(shape, dtype=np.int64))
        nbytes = size * dt.itemsize
        if nbytes:
            payload = _recv_exact(sock, nbytes)
            if payload is None:
                raise ProtocolError("connection closed mid-frame")
            arr = np.frombuffer(bytes(payload), dtype=dt).reshape(shape)
        else:
            arr = np.empty(shape, dtype=dt)
        arrays.append(arr)
    return header, arrays


def graph_fingerprint(graph) -> Dict[str, float]:
    """The handshake identity of a graph: shape plus probability sums.

    Matches the graph component of the Session fingerprint (same 9-digit
    rounding), so two replicas agree iff they would stamp the same
    reproducibility fingerprint on results.
    """
    _src, _dst, p, pp = graph.edge_arrays()
    return {
        "n": int(graph.n),
        "m": int(graph.m),
        "p_sum": round(float(np.sum(p)), 9),
        "pp_sum": round(float(np.sum(pp)), 9),
    }


def store_digest(path) -> str:
    """A cheap identity digest of a graph store file.

    Hashes the full serialized header (magic, array table, meta — which
    embeds the ingest provenance) plus the file size.  Two stores with
    equal digests were written from the same ingest; payload corruption
    is the store checksum's job (``repro.storage.open_store(validate=)``),
    not the handshake's.
    """
    import os

    from ..storage.format import read_header

    path = str(path)
    file_size = os.path.getsize(path)
    with open(path, "rb") as fh:
        prefix = fh.read(1 << 16)
    header = read_header(path, file_size, prefix)
    with open(path, "rb") as fh:
        raw = fh.read(header.data_start)
    digest = hashlib.sha256(raw)
    digest.update(str(file_size).encode())
    return digest.hexdigest()


def publishable_store(graph) -> Optional[str]:
    """The store path remote hosts could open for ``graph``, if any
    (pristine store-backed graphs only — same rule as the local pool's
    by-path publication)."""
    from ..core.parallel import _publishable_store_path

    return _publishable_store_path(graph)
