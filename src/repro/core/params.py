"""Parameter derivations for the PRR-Boost analysis (Lemma 3 / Theorem 2).

These formulas fix the sample-size schedule that gives PRR-Boost its
``(1 − 1/e − ε) · μ(B*)/Δ_S(B*)`` guarantee with probability ``1 − n^{-ℓ}``.
They are exposed separately so tests can check the algebra and so users can
inspect how many samples a configuration implies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..im.imm import log_binomial

__all__ = ["SandwichParams", "derive_params"]


@dataclass(frozen=True)
class SandwichParams:
    """Derived constants of Algorithm 2.

    Attributes
    ----------
    ell_prime:
        ``ℓ' = ℓ · (1 + log 3 / log n)`` — the failure-probability inflation
        that makes the three union-bounded events jointly fail with
        probability at most ``n^{-ℓ}``.
    alpha, beta:
        The two terms of Lemma 3.
    epsilon1:
        ``ε₁ = ε·α / ((1 − 1/e)·α + β)`` — the share of the error budget
        allotted to the node-selection phase.
    theta_coefficient:
        The numerator of Inequality (5); dividing by ``OPT_μ`` gives the
        required number of PRR-graphs.
    """

    epsilon: float
    ell: float
    n: int
    k: int
    ell_prime: float
    alpha: float
    beta: float
    epsilon1: float
    theta_coefficient: float

    def required_samples(self, opt_mu_lower_bound: float) -> int:
        """Number of PRR-graphs required given a lower bound on ``OPT_μ``."""
        if opt_mu_lower_bound <= 0:
            raise ValueError("opt_mu_lower_bound must be positive")
        return int(math.ceil(self.theta_coefficient / opt_mu_lower_bound))


def derive_params(n: int, k: int, epsilon: float = 0.5, ell: float = 1.0) -> SandwichParams:
    """Compute the Algorithm 2 constants for a problem size.

    Mirrors Lines 1-2 of Algorithm 2 and Lemma 3 exactly:

    * ``α = sqrt(ℓ'·log n + log 2)``
    * ``β = sqrt((1 − 1/e)(log C(n,k) + ℓ'·log n + log 2))``
    * ``θ ≥ (2 − 2/e)·n·log(C(n,k)·2·n^{ℓ'}) / ((ε − (1−1/e)ε₁)² · OPT_μ)``
    """
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must lie in (0, 1)")
    if n < 2:
        raise ValueError("n must be at least 2")
    if not 1 <= k <= n:
        raise ValueError("k must lie in [1, n]")
    log_n = math.log(n)
    ell_prime = ell * (1.0 + math.log(3.0) / log_n)
    lbk = log_binomial(n, k)
    alpha = math.sqrt(ell_prime * log_n + math.log(2.0))
    one_minus_inv_e = 1.0 - 1.0 / math.e
    beta = math.sqrt(one_minus_inv_e * (lbk + ell_prime * log_n + math.log(2.0)))
    epsilon1 = epsilon * alpha / (one_minus_inv_e * alpha + beta)
    denom = (epsilon - one_minus_inv_e * epsilon1) ** 2
    theta_coefficient = (
        (2.0 - 2.0 / math.e) * n * (lbk + math.log(2.0) + ell_prime * log_n) / denom
    )
    return SandwichParams(
        epsilon=epsilon,
        ell=ell,
        n=n,
        k=k,
        ell_prime=ell_prime,
        alpha=alpha,
        beta=beta,
        epsilon1=epsilon1,
        theta_coefficient=theta_coefficient,
    )
