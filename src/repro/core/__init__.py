"""The paper's core contribution: PRR-graphs and the boosting algorithms."""

from .boost import BoostResult, CriticalSetSampler, PRRSampler, prr_boost, prr_boost_lb
from .mc_greedy import mc_greedy_boost
from .parallel import (
    legacy_parallel_critical_sets,
    legacy_parallel_prr_collection,
    parallel_critical_sets,
    parallel_prr_collection,
    parallel_rr_csr,
    shutdown_runtime,
)
from .estimator import (
    CollectionStats,
    collection_stats,
    estimate_delta,
    estimate_mu,
    greedy_delta_selection,
    legacy_estimate_delta,
    legacy_estimate_mu,
    legacy_greedy_delta_selection,
)
from .params import SandwichParams, derive_params
from .prr import (
    ACTIVATED,
    BOOSTABLE,
    HOPELESS,
    EdgeState,
    PRRArena,
    PRRGraph,
    sample_critical_batch,
    sample_critical_set,
    sample_prr_arena,
    sample_prr_batch,
    sample_prr_graph,
    sample_prr_lanes,
)

__all__ = [
    "PRRGraph",
    "PRRArena",
    "EdgeState",
    "sample_prr_graph",
    "sample_prr_batch",
    "sample_prr_arena",
    "sample_critical_set",
    "sample_critical_batch",
    "ACTIVATED",
    "HOPELESS",
    "BOOSTABLE",
    "estimate_delta",
    "estimate_mu",
    "greedy_delta_selection",
    "legacy_estimate_delta",
    "legacy_estimate_mu",
    "legacy_greedy_delta_selection",
    "CollectionStats",
    "collection_stats",
    "prr_boost",
    "prr_boost_lb",
    "BoostResult",
    "PRRSampler",
    "CriticalSetSampler",
    "SandwichParams",
    "derive_params",
    "mc_greedy_boost",
    "sample_prr_lanes",
    "parallel_prr_collection",
    "parallel_critical_sets",
    "parallel_rr_csr",
    "legacy_parallel_prr_collection",
    "legacy_parallel_critical_sets",
    "shutdown_runtime",
]
