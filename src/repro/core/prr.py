"""Potentially Reverse Reachable (PRR) graphs — Definition 3 / Algorithm 1.

A PRR-graph for a root ``r`` is sampled by fixing every edge of ``G`` to one
of three states:

* **live** with probability ``p``,
* **live-upon-boost** with probability ``p' − p``,
* **blocked** with probability ``1 − p'``,

and keeping the minimal subgraph containing all non-blocked paths from seeds
to ``r``.  The estimator identities are (Lemma 1 / Section IV-C):

* ``Δ_S(B) = n · E[f_R(B)]`` where ``f_R(B) = 1`` iff ``r`` is inactive
  without boosting but active upon boosting ``B``;
* ``μ(B) = n · E[f⁻_R(B)] ≤ Δ_S(B)`` where ``f⁻_R(B) = I(B ∩ C_R ≠ ∅)``
  and ``C_R = {v : f_R({v}) = 1}`` is the *critical node set* — a submodular
  lower bound.

Sampling runs on the shared vectorized engine
(:class:`repro.engine.SamplingEngine`): phase I is a frontier-based backward
0–1 BFS over the in-CSR with edge states held in a flat ``int8`` array
keyed by dense edge id (no per-edge ``(u, v)`` dict), and the batch entry
points (:func:`sample_prr_batch`, :func:`sample_critical_batch`) amortize
engine setup across hundreds of roots.  This module keeps the domain side:

* :class:`PRRGraph` — the compressed graph with ``f_R`` evaluation and
  incremental "which single node would activate the root" queries used by
  the greedy selection over ``Δ̂``, all mask-vectorized,
* :func:`_compress` — phase II (super-seed merge, dead-node removal, live
  shortcut edges to the root), shared with the reference sampler so seeded
  equivalence is testable end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..engine import SamplingEngine
from ..engine import world as engine_world
from ..engine.batch import ACTIVATED, BOOSTABLE, HOPELESS, PhaseOneResult
from ..engine.hashing import hash_draw as _hash_draw
from ..engine.traversal import grow_reachable

from ..graphs.digraph import DiGraph

__all__ = [
    "EdgeState",
    "PRRGraph",
    "sample_prr_graph",
    "sample_prr_batch",
    "sample_critical_set",
    "sample_critical_batch",
    "prr_graph_from_phase1",
    "ACTIVATED",
    "HOPELESS",
    "BOOSTABLE",
]


class EdgeState:
    """Edge states of the deterministic copy ``g`` (Definition 3).

    The values are the engine's encoding — a single source of truth for
    the flat ``int8`` state arrays.
    """

    LIVE = engine_world.LIVE
    BOOST = engine_world.BOOST  # live-upon-boost
    BLOCKED = engine_world.BLOCKED


_EMPTY_IDS = np.empty(0, dtype=np.int64)


@dataclass
class PRRGraph:
    """A sampled (and, when boostable, compressed) PRR-graph.

    Local node ids: ``0`` is the merged super-seed; the root is
    ``root_local``.  ``node_globals[local]`` maps back to graph node ids
    (``-1`` for the super-seed).  Edges are stored as parallel arrays; an
    edge is traversable for boost set ``B`` when it is live, or when it is
    live-upon-boost and its head's global id is in ``B``.
    """

    root: int
    status: str
    node_globals: List[int] = field(default_factory=list)
    edge_src: List[int] = field(default_factory=list)
    edge_dst: List[int] = field(default_factory=list)
    edge_boost: List[bool] = field(default_factory=list)
    root_local: int = -1
    critical: FrozenSet[int] = frozenset()
    uncompressed_nodes: int = 0
    uncompressed_edges: int = 0
    _arrays: Optional[Tuple[np.ndarray, ...]] = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    @property
    def is_boostable(self) -> bool:
        return self.status == BOOSTABLE

    @property
    def estimated_bytes(self) -> int:
        """Approximate storage footprint of the compressed graph.

        Counts the edge arrays (two ints and a flag per edge), the
        local-to-global map, and the critical set — the quantities behind
        the paper's Table 2/3 memory columns.
        """
        return (
            len(self.edge_src) * 17  # src + dst (8 each) + boost flag
            + len(self.node_globals) * 8
            + len(self.critical) * 8
        )

    @property
    def num_nodes(self) -> int:
        return len(self.node_globals)

    @property
    def num_edges(self) -> int:
        return len(self.edge_src)

    # ------------------------------------------------------------------
    def _edge_arrays(self) -> Tuple[np.ndarray, ...]:
        """Cached numpy views of the edge lists plus per-edge head globals."""
        if self._arrays is None:
            src = np.asarray(self.edge_src, dtype=np.int64)
            dst = np.asarray(self.edge_dst, dtype=np.int64)
            boost = np.asarray(self.edge_boost, dtype=bool)
            globals_ = np.asarray(self.node_globals, dtype=np.int64)
            head_globals = globals_[dst] if dst.size else _EMPTY_IDS
            self._arrays = (src, dst, boost, globals_, head_globals)
        return self._arrays

    def _boosted_heads(self, boost: AbstractSet[int]) -> np.ndarray:
        """Per-edge mask: the edge's head is in the boost set."""
        _src, _dst, _eb, _globals, head_globals = self._edge_arrays()
        if not boost or head_globals.size == 0:
            return np.zeros(head_globals.size, dtype=bool)
        return np.isin(head_globals, np.fromiter(boost, dtype=np.int64))

    def _forward_reachable(self, boosted_heads: np.ndarray) -> np.ndarray:
        """Nodes reachable from the super-seed via traversable edges."""
        src, dst, edge_boost, _globals, _hg = self._edge_arrays()
        traversable = ~edge_boost | boosted_heads
        reached = np.zeros(self.num_nodes, dtype=bool)
        reached[0] = True
        return grow_reachable(src, dst, reached, traversable)

    def _backward_reachable(self, boosted_heads: np.ndarray) -> np.ndarray:
        """Nodes from which the root is reachable via traversable edges.

        The edge ``u -> v`` is traversable when live, or when its head ``v``
        is boosted.
        """
        src, dst, edge_boost, _globals, _hg = self._edge_arrays()
        traversable = ~edge_boost | boosted_heads
        reached = np.zeros(self.num_nodes, dtype=bool)
        reached[self.root_local] = True
        return grow_reachable(dst, src, reached, traversable)

    def f(self, boost: AbstractSet[int]) -> bool:
        """Evaluate ``f_R(B)``: root activated upon boosting ``B``.

        Always ``False`` for non-boostable graphs (activated roots need no
        boost; hopeless roots cannot be activated with ``≤ k`` boosts).
        """
        if not self.is_boostable:
            return False
        boosted_heads = self._boosted_heads(boost)
        return bool(self._forward_reachable(boosted_heads)[self.root_local])

    def f_lower(self, boost: AbstractSet[int]) -> bool:
        """Evaluate ``f⁻_R(B) = I(B ∩ C_R ≠ ∅)`` (the submodular proxy)."""
        if not self.is_boostable:
            return False
        return not self.critical.isdisjoint(boost)

    def frontier_nodes(self, boost: AbstractSet[int]) -> FrozenSet[int]:
        """Heads of boost edges leaving the super-seed's reachable region.

        Boosting any of them strictly enlarges the region even when no
        single node activates the root outright — the tie-break the greedy
        ``Δ̂`` selection uses to make progress on supermodular chains, where
        every single-node marginal gain is zero.
        """
        if not self.is_boostable:
            return frozenset()
        boosted_heads = self._boosted_heads(boost)
        forward = self._forward_reachable(boosted_heads)
        if forward[self.root_local]:
            return frozenset()
        src, dst, edge_boost, _globals, head_globals = self._edge_arrays()
        crossing = edge_boost & forward[src] & ~forward[dst] & ~boosted_heads
        return frozenset(np.unique(head_globals[crossing]).tolist())

    def activating_nodes(self, boost: AbstractSet[int]) -> FrozenSet[int]:
        """``A_R(B) = {v : f_R(B ∪ {v}) = 1}`` — single-node completions.

        Computed with two linear traversals: let ``Z`` be the super-seed's
        forward-traversable region and ``Y`` the root's backward region;
        adding ``v`` helps exactly when some live-upon-boost edge crosses
        from ``Z`` into ``v ∈ Y`` (a simple path enters ``v`` once, so only
        one of ``v``'s boost in-edges can be on it).

        Returns an empty set when the root is already activated by ``B``.
        ``A_R(∅)`` is exactly the critical set ``C_R``.
        """
        if not self.is_boostable:
            return frozenset()
        boosted_heads = self._boosted_heads(boost)
        forward = self._forward_reachable(boosted_heads)
        if forward[self.root_local]:
            return frozenset()
        backward = self._backward_reachable(boosted_heads)
        src, dst, edge_boost, _globals, head_globals = self._edge_arrays()
        crossing = edge_boost & forward[src] & backward[dst] & ~boosted_heads
        return frozenset(np.unique(head_globals[crossing]).tolist())


# ----------------------------------------------------------------------
# Sampling (engine-backed)
# ----------------------------------------------------------------------
def prr_graph_from_phase1(result: PhaseOneResult, k: int) -> PRRGraph:
    """Assemble a :class:`PRRGraph` from a raw phase-I exploration."""
    if result.activated:
        return PRRGraph(root=result.root, status=ACTIVATED)
    if result.seeds_found.size == 0:
        return PRRGraph(
            root=result.root,
            status=HOPELESS,
            uncompressed_nodes=result.node_count,
            uncompressed_edges=int(result.edge_src.size),
        )
    return _compress(
        result.root,
        result.seeds_found,
        result.edge_src,
        result.edge_dst,
        result.edge_boost,
        k,
        result.node_count,
    )


def sample_prr_graph(
    graph: DiGraph,
    seeds: AbstractSet[int],
    k: int,
    rng: np.random.Generator,
    root: int | None = None,
    world_seed: int | None = None,
) -> PRRGraph:
    """Sample one PRR-graph (Algorithm 1 + Phase-II compression).

    Parameters mirror the paper: ``k`` drives the distance pruning (paths
    needing more than ``k`` live-upon-boost edges can never become live).
    ``world_seed`` (optional) fixes the entire deterministic world by
    hashing, so repeated calls with the same seed and root see identical
    edge states regardless of ``k`` — used by paired ablations.
    """
    engine = SamplingEngine.for_graph(graph)
    r = int(rng.integers(graph.n)) if root is None else int(root)
    seed_set = seeds if isinstance(seeds, frozenset) else frozenset(int(s) for s in seeds)
    if r in seed_set:
        return PRRGraph(root=r, status=ACTIVATED)
    result = engine.prr_phase1(
        engine.seeds_mask(seed_set), r, k, rng=rng, world_seed=world_seed
    )
    return prr_graph_from_phase1(result, k)


def sample_prr_batch(
    graph: DiGraph,
    seeds: AbstractSet[int],
    k: int,
    rng: np.random.Generator,
    count: int,
    roots: Sequence[int] | None = None,
) -> List[PRRGraph]:
    """Sample ``count`` PRR-graphs, looping phase I over one shared engine.

    Equivalent to ``count`` :func:`sample_prr_graph` calls on the same RNG;
    the engine's stamp buffers and seed mask are reused across the batch.
    """
    engine = SamplingEngine.for_graph(graph)
    mask = engine.seeds_mask(seeds)
    out: List[PRRGraph] = []
    for i in range(count):
        r = int(rng.integers(graph.n)) if roots is None else int(roots[i])
        if mask[r]:
            out.append(PRRGraph(root=r, status=ACTIVATED))
            continue
        result = engine.prr_phase1(mask, r, k, rng=rng)
        out.append(prr_graph_from_phase1(result, k))
    return out


def sample_critical_set(
    graph: DiGraph,
    seeds: AbstractSet[int],
    rng: np.random.Generator,
    root: int | None = None,
) -> Tuple[str, FrozenSet[int], int]:
    """Sample only the critical node set ``C_R`` (PRR-Boost-LB fast path).

    A node is critical when a seed-to-root path exists with exactly one
    live-upon-boost edge whose head is that node, so the backward search can
    stop at distance 1 regardless of ``k`` (Section V-C).

    Returns ``(status, critical_set, explored_edges)``; the critical set is
    empty for activated/hopeless roots, which still count as samples for the
    ``μ̂`` estimator.
    """
    return SamplingEngine.for_graph(graph).critical_set(seeds, rng, root=root)


def sample_critical_batch(
    graph: DiGraph,
    seeds: AbstractSet[int],
    rng: np.random.Generator,
    count: int,
) -> List[Tuple[str, FrozenSet[int], int]]:
    """Sample ``count`` critical sets on one shared engine."""
    return SamplingEngine.for_graph(graph).sample_critical_batch(seeds, rng, count)


# ----------------------------------------------------------------------
# Phase II compression (vectorized over the collected edge arrays)
# ----------------------------------------------------------------------
_BIG = np.int64(1) << 40


def _bfs01_arrays(
    nn: int,
    tails: np.ndarray,
    heads: np.ndarray,
    weights: np.ndarray,
    starts: np.ndarray,
) -> np.ndarray:
    """0-1 shortest distances from ``starts`` by scatter-min relaxation.

    Converges in O(diameter) passes of O(edges) vectorized work — the
    compressed graphs are small and shallow, so this beats the deque BFS
    it replaced by a wide margin.
    """
    dist = np.full(nn, _BIG, dtype=np.int64)
    dist[starts] = 0
    while True:
        cand = dist[tails] + weights
        relax = cand < dist[heads]
        if not relax.any():
            return dist
        np.minimum.at(dist, heads[relax], cand[relax])


def _compress(
    r: int,
    seeds_found: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    boost: np.ndarray,
    k: int,
    uncompressed_nodes: int,
) -> PRRGraph:
    """Phase II: merge the super-seed, prune, shortcut, and clean up.

    Operates on the phase-I edge arrays with a compacted local id space;
    the super-seed is local id ``nn`` during the rewrite and becomes 0 in
    the output, matching the paper's Figure 2 compression.
    """
    num_edges = int(src.size)
    nodes = np.unique(np.concatenate([src, dst, seeds_found, [r]]))
    nn = int(nodes.size)
    ls = np.searchsorted(nodes, src)
    ld = np.searchsorted(nodes, dst)
    lseeds = np.searchsorted(nodes, seeds_found)
    lr = int(np.searchsorted(nodes, r))
    wi = boost.astype(np.int64)

    def hopeless() -> PRRGraph:
        return PRRGraph(
            root=r,
            status=HOPELESS,
            uncompressed_nodes=uncompressed_nodes,
            uncompressed_edges=num_edges,
        )

    # dS: min #boost-edges from any seed (forward direction).
    d_seed = _bfs01_arrays(nn, ls, ld, wi, lseeds)
    if d_seed[lr] == 0:  # defensive; Phase I should have caught this
        return PRRGraph(root=r, status=ACTIVATED)
    merged = d_seed == 0

    # d'_r: min #boost-edges to the root avoiding the super-seed — a
    # backward relaxation over reversed edges that never enters the merged
    # region.
    rev = ~merged[ls]
    d_root = _bfs01_arrays(
        nn, ld[rev], ls[rev], wi[rev], np.array([lr], dtype=np.int64)
    )

    # Critical nodes: boost edge from the merged region into v, plus a live
    # path from v to the root (both measured before the shortcut rewrite).
    crit_edges = boost & merged[ls] & ~merged[ld] & (d_root[ld] == 0)
    critical = frozenset(nodes[np.unique(ld[crit_edges])].tolist())

    # Nodes that can sit on a <=k-boost path from super-seed to root.
    kept = ~merged & (d_seed + d_root <= k)
    if not kept[lr]:
        # Root unreachable within budget after exact accounting.
        return hopeless()

    # Rebuild edges over {super-seed} ∪ kept, applying the live-shortcut
    # rule: a non-root node with a live path to the root keeps no out-edges
    # and gains a direct live edge to the root.
    shortcut = kept & (d_root == 0)
    shortcut[lr] = False
    src_merged = merged[ls]
    keep_edge = (
        (src_merged | (kept[ls] & ~shortcut[ls])) & kept[ld] & (ls != lr)
    )
    super_id = nn  # local id of the super-seed during the rewrite
    src_key = np.where(src_merged[keep_edge], super_id, ls[keep_edge])
    # Deduplicate (src, dst, boost) triples via integer encoding.
    enc = (src_key * (nn + 1) + ld[keep_edge]) * 2 + wi[keep_edge]
    shortcut_ids = np.flatnonzero(shortcut)
    enc = np.unique(
        np.concatenate([enc, (shortcut_ids * (nn + 1) + lr) * 2])
    )
    e_pair = enc >> 1
    e_src = e_pair // (nn + 1)
    e_dst = e_pair % (nn + 1)
    e_boost = (enc & 1).astype(bool)

    # Cleanup: keep only nodes on super-seed -> root paths.
    from_super = np.zeros(nn + 1, dtype=bool)
    from_super[super_id] = True
    grow_reachable(e_src, e_dst, from_super)
    to_root = np.zeros(nn + 1, dtype=bool)
    to_root[lr] = True
    grow_reachable(e_dst, e_src, to_root)
    alive = from_super & to_root
    if not (alive[lr] and alive[super_id]):
        return hopeless()
    edge_alive = alive[e_src] & alive[e_dst]

    # Local id assignment: super-seed = 0, the rest ordered by global id.
    alive_real = np.flatnonzero(alive[:nn])
    local_out = np.zeros(nn + 1, dtype=np.int64)
    local_out[alive_real] = np.arange(1, alive_real.size + 1)
    local_out[super_id] = 0

    return PRRGraph(
        root=r,
        status=BOOSTABLE,
        node_globals=[-1] + nodes[alive_real].tolist(),
        edge_src=local_out[e_src[edge_alive]].tolist(),
        edge_dst=local_out[e_dst[edge_alive]].tolist(),
        edge_boost=e_boost[edge_alive].tolist(),
        root_local=int(local_out[lr]),
        critical=critical,
        uncompressed_nodes=uncompressed_nodes,
        uncompressed_edges=num_edges,
    )
