"""Potentially Reverse Reachable (PRR) graphs — Definition 3 / Algorithm 1.

A PRR-graph for a root ``r`` is sampled by fixing every edge of ``G`` to one
of three states:

* **live** with probability ``p``,
* **live-upon-boost** with probability ``p' − p``,
* **blocked** with probability ``1 − p'``,

and keeping the minimal subgraph containing all non-blocked paths from seeds
to ``r``.  The estimator identities are (Lemma 1 / Section IV-C):

* ``Δ_S(B) = n · E[f_R(B)]`` where ``f_R(B) = 1`` iff ``r`` is inactive
  without boosting but active upon boosting ``B``;
* ``μ(B) = n · E[f⁻_R(B)] ≤ Δ_S(B)`` where ``f⁻_R(B) = I(B ∩ C_R ≠ ∅)``
  and ``C_R = {v : f_R({v}) = 1}`` is the *critical node set* — a submodular
  lower bound.

This module implements

* :func:`sample_prr_graph` — phase I backward 0–1 BFS with the distance-
  ``> k`` pruning, phase II compression (super-seed merge, dead-node removal,
  live shortcut edges to the root),
* :func:`sample_critical_set` — the cheaper generation used by PRR-Boost-LB
  which only materializes ``C_R`` (backward exploration capped at distance 1),
* :class:`PRRGraph` — the compressed graph with ``f_R`` evaluation and
  incremental "which single node would activate the root" queries used by the
  greedy selection over ``Δ̂``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import AbstractSet, Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from ..graphs.digraph import DiGraph

__all__ = [
    "EdgeState",
    "PRRGraph",
    "sample_prr_graph",
    "sample_critical_set",
    "ACTIVATED",
    "HOPELESS",
    "BOOSTABLE",
]


class EdgeState:
    """Edge states of the deterministic copy ``g`` (Definition 3)."""

    LIVE = 0
    BOOST = 1  # live-upon-boost
    BLOCKED = 2


ACTIVATED = "activated"
HOPELESS = "hopeless"
BOOSTABLE = "boostable"

_INF = float("inf")


_MASK64 = (1 << 64) - 1


def _hash_draw(world_seed: int, u: int, v: int) -> float:
    """Deterministic uniform in [0, 1) from (world, edge) via splitmix64.

    Lets callers fix an entire world independent of traversal order, so the
    same sampled world can be re-examined under different pruning budgets
    (the paired design the pruning ablation needs).
    """
    x = (
        world_seed * 0x9E3779B97F4A7C15
        + (u + 1) * 0xBF58476D1CE4E5B9
        + (v + 1) * 0x94D049BB133111EB
    ) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x / 2.0**64


def _sample_edge_state(
    cache: Dict[Tuple[int, int], int],
    u: int,
    v: int,
    p: float,
    pp: float,
    rng: np.random.Generator,
    world_seed: Optional[int] = None,
) -> int:
    """State of edge ``u -> v``, sampled once and cached.

    With ``world_seed`` set, the draw is a hash of (world, edge) instead of
    the next RNG variate — same world regardless of traversal order.
    """
    key = (u, v)
    state = cache.get(key)
    if state is None:
        draw = rng.random() if world_seed is None else _hash_draw(world_seed, u, v)
        if draw < p:
            state = EdgeState.LIVE
        elif draw < pp:
            state = EdgeState.BOOST
        else:
            state = EdgeState.BLOCKED
        cache[key] = state
    return state


@dataclass
class PRRGraph:
    """A sampled (and, when boostable, compressed) PRR-graph.

    Local node ids: ``0`` is the merged super-seed; the root is
    ``root_local``.  ``node_globals[local]`` maps back to graph node ids
    (``-1`` for the super-seed).  Edges are stored as parallel arrays; an
    edge is traversable for boost set ``B`` when it is live, or when it is
    live-upon-boost and its head's global id is in ``B``.
    """

    root: int
    status: str
    node_globals: List[int] = field(default_factory=list)
    edge_src: List[int] = field(default_factory=list)
    edge_dst: List[int] = field(default_factory=list)
    edge_boost: List[bool] = field(default_factory=list)
    root_local: int = -1
    critical: FrozenSet[int] = frozenset()
    uncompressed_nodes: int = 0
    uncompressed_edges: int = 0
    _fwd: Optional[List[List[Tuple[int, bool]]]] = field(default=None, repr=False)
    _bwd: Optional[List[List[Tuple[int, bool]]]] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    @property
    def is_boostable(self) -> bool:
        return self.status == BOOSTABLE

    @property
    def estimated_bytes(self) -> int:
        """Approximate storage footprint of the compressed graph.

        Counts the edge arrays (two ints and a flag per edge), the
        local-to-global map, and the critical set — the quantities behind
        the paper's Table 2/3 memory columns.
        """
        return (
            len(self.edge_src) * 17  # src + dst (8 each) + boost flag
            + len(self.node_globals) * 8
            + len(self.critical) * 8
        )

    @property
    def num_nodes(self) -> int:
        return len(self.node_globals)

    @property
    def num_edges(self) -> int:
        return len(self.edge_src)

    # ------------------------------------------------------------------
    def _adjacency(self) -> Tuple[List[List[Tuple[int, bool]]], List[List[Tuple[int, bool]]]]:
        if self._fwd is None:
            fwd: List[List[Tuple[int, bool]]] = [[] for _ in self.node_globals]
            bwd: List[List[Tuple[int, bool]]] = [[] for _ in self.node_globals]
            for s, d, b in zip(self.edge_src, self.edge_dst, self.edge_boost):
                fwd[s].append((d, b))
                bwd[d].append((s, b))
            self._fwd = fwd
            self._bwd = bwd
        return self._fwd, self._bwd

    def _forward_reachable(self, boost: AbstractSet[int]) -> List[bool]:
        """Nodes reachable from the super-seed via traversable edges."""
        fwd, _ = self._adjacency()
        reached = [False] * self.num_nodes
        reached[0] = True
        stack = [0]
        globals_ = self.node_globals
        while stack:
            u = stack.pop()
            for v, is_boost in fwd[u]:
                if reached[v]:
                    continue
                if is_boost and globals_[v] not in boost:
                    continue
                reached[v] = True
                stack.append(v)
        return reached

    def _backward_reachable(self, boost: AbstractSet[int]) -> List[bool]:
        """Nodes from which the root is reachable via traversable edges."""
        _, bwd = self._adjacency()
        reached = [False] * self.num_nodes
        reached[self.root_local] = True
        stack = [self.root_local]
        globals_ = self.node_globals
        while stack:
            v = stack.pop()
            for u, is_boost in bwd[v]:
                if reached[u]:
                    continue
                # The edge u -> v is traversable when live, or when its head
                # v is boosted.
                if is_boost and globals_[v] not in boost:
                    continue
                reached[u] = True
                stack.append(u)
        return reached

    def f(self, boost: AbstractSet[int]) -> bool:
        """Evaluate ``f_R(B)``: root activated upon boosting ``B``.

        Always ``False`` for non-boostable graphs (activated roots need no
        boost; hopeless roots cannot be activated with ``≤ k`` boosts).
        """
        if not self.is_boostable:
            return False
        return self._forward_reachable(boost)[self.root_local]

    def f_lower(self, boost: AbstractSet[int]) -> bool:
        """Evaluate ``f⁻_R(B) = I(B ∩ C_R ≠ ∅)`` (the submodular proxy)."""
        if not self.is_boostable:
            return False
        return not self.critical.isdisjoint(boost)

    def frontier_nodes(self, boost: AbstractSet[int]) -> FrozenSet[int]:
        """Heads of boost edges leaving the super-seed's reachable region.

        Boosting any of them strictly enlarges the region even when no
        single node activates the root outright — the tie-break the greedy
        ``Δ̂`` selection uses to make progress on supermodular chains, where
        every single-node marginal gain is zero.
        """
        if not self.is_boostable:
            return frozenset()
        forward = self._forward_reachable(boost)
        if forward[self.root_local]:
            return frozenset()
        globals_ = self.node_globals
        result: set[int] = set()
        for s, d, is_boost in zip(self.edge_src, self.edge_dst, self.edge_boost):
            if is_boost and forward[s] and not forward[d] and globals_[d] not in boost:
                result.add(globals_[d])
        return frozenset(result)

    def activating_nodes(self, boost: AbstractSet[int]) -> FrozenSet[int]:
        """``A_R(B) = {v : f_R(B ∪ {v}) = 1}`` — single-node completions.

        Computed with two linear traversals: let ``Z`` be the super-seed's
        forward-traversable region and ``Y`` the root's backward region;
        adding ``v`` helps exactly when some live-upon-boost edge crosses
        from ``Z`` into ``v ∈ Y`` (a simple path enters ``v`` once, so only
        one of ``v``'s boost in-edges can be on it).

        Returns an empty set when the root is already activated by ``B``.
        ``A_R(∅)`` is exactly the critical set ``C_R``.
        """
        if not self.is_boostable:
            return frozenset()
        forward = self._forward_reachable(boost)
        if forward[self.root_local]:
            return frozenset()
        backward = self._backward_reachable(boost)
        globals_ = self.node_globals
        result: set[int] = set()
        for s, d, is_boost in zip(self.edge_src, self.edge_dst, self.edge_boost):
            if is_boost and forward[s] and backward[d] and globals_[d] not in boost:
                result.add(globals_[d])
        return frozenset(result)


def sample_prr_graph(
    graph: DiGraph,
    seeds: AbstractSet[int],
    k: int,
    rng: np.random.Generator,
    root: int | None = None,
    world_seed: int | None = None,
) -> PRRGraph:
    """Sample one PRR-graph (Algorithm 1 + Phase-II compression).

    Parameters mirror the paper: ``k`` drives the distance pruning (paths
    needing more than ``k`` live-upon-boost edges can never become live).
    ``world_seed`` (optional) fixes the entire deterministic world by
    hashing, so repeated calls with the same seed and root see identical
    edge states regardless of ``k`` — used by paired ablations.
    """
    r = int(rng.integers(graph.n)) if root is None else int(root)
    if r in seeds:
        return PRRGraph(root=r, status=ACTIVATED)

    # ------------------------------------------------------------------
    # Phase I: backward 0-1 BFS from r with distance pruning (Lines 1-19).
    # ------------------------------------------------------------------
    state_cache: Dict[Tuple[int, int], int] = {}
    dr: Dict[int, float] = {r: 0}
    queue: deque[Tuple[int, int]] = deque([(r, 0)])
    processed: set[int] = set()
    # Collected non-blocked edges (v, u, is_boost) with d_vr <= k.
    edges: List[Tuple[int, int, bool]] = []
    seeds_found: set[int] = set()

    while queue:
        u, dur = queue.popleft()
        if dur > dr.get(u, _INF) or u in processed:
            continue
        processed.add(u)
        sources = graph.in_neighbors(u)
        probs = graph.in_probs(u)
        boosted = graph.in_boosted_probs(u)
        for i in range(sources.size):
            v = int(sources[i])
            state = _sample_edge_state(
                state_cache, v, u, probs[i], boosted[i], rng, world_seed
            )
            if state == EdgeState.BLOCKED:
                continue
            dvr = dur + (1 if state == EdgeState.BOOST else 0)
            if dvr > k:  # pruning (Line 11)
                continue
            edges.append((v, u, state == EdgeState.BOOST))
            if v in seeds:
                if dvr == 0:
                    return PRRGraph(root=r, status=ACTIVATED)
                seeds_found.add(v)
                # Paths through a seed are dominated by the suffix starting
                # at that seed, so its in-edges need not be explored.
                dr[v] = min(dr.get(v, _INF), dvr)
                continue
            if dvr < dr.get(v, _INF):
                dr[v] = dvr
                if dvr == dur:
                    queue.appendleft((v, dvr))
                else:
                    queue.append((v, dvr))

    if not seeds_found:
        return PRRGraph(
            root=r,
            status=HOPELESS,
            uncompressed_nodes=len(dr),
            uncompressed_edges=len(edges),
        )

    return _compress(r, seeds_found, edges, k, len(dr))


def _zero_one_bfs(
    starts: List[int],
    adjacency: Dict[int, List[Tuple[int, bool]]],
    excluded: AbstractSet[int] = frozenset(),
) -> Dict[int, int]:
    """Generic 0-1 BFS; edge weight is 1 for live-upon-boost edges.

    ``excluded`` nodes are never entered (used to keep paths off the
    super-seed when computing ``d'_r``).
    """
    dist: Dict[int, int] = {s: 0 for s in starts}
    queue: deque[Tuple[int, int]] = deque((s, 0) for s in starts)
    done: set[int] = set()
    while queue:
        u, du = queue.popleft()
        if du > dist.get(u, _INF) or u in done:
            continue
        done.add(u)
        for v, is_boost in adjacency.get(u, ()):
            if v in excluded:
                continue
            dv = du + (1 if is_boost else 0)
            if dv < dist.get(v, _INF):
                dist[v] = dv
                if is_boost:
                    queue.append((v, dv))
                else:
                    queue.appendleft((v, dv))
    return dist


def _compress(
    r: int,
    seeds_found: set[int],
    edges: List[Tuple[int, int, bool]],
    k: int,
    uncompressed_nodes: int,
) -> PRRGraph:
    """Phase II: merge the super-seed, prune, shortcut, and clean up."""
    forward_adj: Dict[int, List[Tuple[int, bool]]] = {}
    backward_adj: Dict[int, List[Tuple[int, bool]]] = {}
    for v, u, is_boost in edges:
        forward_adj.setdefault(v, []).append((u, is_boost))
        backward_adj.setdefault(u, []).append((v, is_boost))

    # dS: min #boost-edges from any seed (forward direction).
    d_seed = _zero_one_bfs(sorted(seeds_found), forward_adj)
    if d_seed.get(r) == 0:  # defensive; Phase I should have caught this
        return PRRGraph(root=r, status=ACTIVATED)
    merged = {v for v, d in d_seed.items() if d == 0}

    # d'_r: min #boost-edges to the root avoiding the super-seed.
    d_root = _zero_one_bfs([r], backward_adj, excluded=merged)

    # Critical nodes: boost edge from the merged region into v, plus a live
    # path from v to the root (both measured before the shortcut rewrite).
    critical = {
        u
        for v, u, is_boost in edges
        if is_boost and v in merged and u not in merged and d_root.get(u, _INF) == 0
    }

    # Nodes that can sit on a <=k-boost path from super-seed to root.
    kept = {
        v
        for v in d_seed
        if v not in merged
        and d_root.get(v, _INF) + d_seed[v] <= k
    }
    if r not in kept:
        # Root unreachable within budget after exact accounting.
        return PRRGraph(
            root=r,
            status=HOPELESS,
            uncompressed_nodes=uncompressed_nodes,
            uncompressed_edges=len(edges),
        )

    # Rebuild edges over {super-seed} ∪ kept, applying the live-shortcut rule:
    # a non-root node with a live path to the root keeps no out-edges and
    # gains a direct live edge to the root.
    shortcut = {v for v in kept if v != r and d_root.get(v, _INF) == 0}
    new_edges: set[Tuple[int, int, bool]] = set()
    for v, u, is_boost in edges:
        src_merged = v in merged
        if not src_merged and v not in kept:
            continue
        if u not in kept:
            continue
        if v == r:
            continue  # out-edges of the root never help reach it
        if not src_merged and v in shortcut:
            continue  # replaced by the direct live edge below
        src_key = -1 if src_merged else v
        new_edges.add((src_key, u, is_boost))
    for v in shortcut:
        new_edges.add((v, r, False))

    # Cleanup: keep only nodes on super-seed -> root paths.
    fwd2: Dict[int, List[Tuple[int, bool]]] = {}
    bwd2: Dict[int, List[Tuple[int, bool]]] = {}
    for s, d, b in new_edges:
        fwd2.setdefault(s, []).append((d, b))
        bwd2.setdefault(d, []).append((s, b))

    def _reach(start: int, adj: Dict[int, List[Tuple[int, bool]]]) -> set[int]:
        seen = {start}
        stack = [start]
        while stack:
            x = stack.pop()
            for y, _b in adj.get(x, ()):
                if y not in seen:
                    seen.add(y)
                    stack.append(y)
        return seen

    from_super = _reach(-1, fwd2)
    to_root = _reach(r, bwd2)
    alive = from_super & to_root
    if r not in alive or -1 not in alive:
        return PRRGraph(
            root=r,
            status=HOPELESS,
            uncompressed_nodes=uncompressed_nodes,
            uncompressed_edges=len(edges),
        )
    final_edges = [
        (s, d, b) for (s, d, b) in new_edges if s in alive and d in alive
    ]

    # Local id assignment: super-seed = 0.
    locals_: Dict[int, int] = {-1: 0}
    node_globals: List[int] = [-1]
    for v in sorted(alive - {-1}):
        locals_[v] = len(node_globals)
        node_globals.append(v)

    prr = PRRGraph(
        root=r,
        status=BOOSTABLE,
        node_globals=node_globals,
        edge_src=[locals_[s] for s, _d, _b in final_edges],
        edge_dst=[locals_[d] for _s, d, _b in final_edges],
        edge_boost=[b for _s, _d, b in final_edges],
        root_local=locals_[r],
        critical=frozenset(critical),
        uncompressed_nodes=uncompressed_nodes,
        uncompressed_edges=len(edges),
    )
    return prr


def sample_critical_set(
    graph: DiGraph,
    seeds: AbstractSet[int],
    rng: np.random.Generator,
    root: int | None = None,
) -> Tuple[str, FrozenSet[int], int]:
    """Sample only the critical node set ``C_R`` (PRR-Boost-LB fast path).

    A node is critical when a seed-to-root path exists with exactly one
    live-upon-boost edge whose head is that node, so the backward search can
    stop at distance 1 regardless of ``k`` (Section V-C).

    Returns ``(status, critical_set, explored_edges)``; the critical set is
    empty for activated/hopeless roots, which still count as samples for the
    ``μ̂`` estimator.
    """
    r = int(rng.integers(graph.n)) if root is None else int(root)
    if r in seeds:
        return ACTIVATED, frozenset(), 0

    state_cache: Dict[Tuple[int, int], int] = {}
    dr: Dict[int, float] = {r: 0}
    queue: deque[Tuple[int, int]] = deque([(r, 0)])
    processed: set[int] = set()
    live_fwd: Dict[int, List[int]] = {}
    boost_edges: List[Tuple[int, int]] = []
    seeds_found: set[int] = set()
    explored = 0

    while queue:
        u, dur = queue.popleft()
        if dur > dr.get(u, _INF) or u in processed:
            continue
        processed.add(u)
        sources = graph.in_neighbors(u)
        probs = graph.in_probs(u)
        boosted = graph.in_boosted_probs(u)
        for i in range(sources.size):
            v = int(sources[i])
            state = _sample_edge_state(state_cache, v, u, probs[i], boosted[i], rng)
            explored += 1
            if state == EdgeState.BLOCKED:
                continue
            dvr = dur + (1 if state == EdgeState.BOOST else 0)
            if dvr > 1:
                continue
            if state == EdgeState.LIVE:
                live_fwd.setdefault(v, []).append(u)
            else:
                boost_edges.append((v, u))
            if v in seeds:
                if dvr == 0:
                    return ACTIVATED, frozenset(), explored
                seeds_found.add(v)
                continue
            if dvr < dr.get(v, _INF):
                dr[v] = dvr
                if dvr == dur:
                    queue.appendleft((v, dvr))
                else:
                    queue.append((v, dvr))

    if not seeds_found:
        return HOPELESS, frozenset(), explored

    # Forward live reachability from the discovered seeds.
    live_region: set[int] = set(seeds_found)
    stack = list(seeds_found)
    while stack:
        x = stack.pop()
        for y in live_fwd.get(x, ()):
            if y not in live_region:
                live_region.add(y)
                stack.append(y)
    if r in live_region:  # defensive; should have been caught in the BFS
        return ACTIVATED, frozenset(), explored

    critical = frozenset(
        head
        for tail, head in boost_edges
        if tail in live_region and dr.get(head, _INF) == 0 and head not in seeds
    )
    return BOOSTABLE, critical, explored
