"""Potentially Reverse Reachable (PRR) graphs — Definition 3 / Algorithm 1.

A PRR-graph for a root ``r`` is sampled by fixing every edge of ``G`` to one
of three states:

* **live** with probability ``p``,
* **live-upon-boost** with probability ``p' − p``,
* **blocked** with probability ``1 − p'``,

and keeping the minimal subgraph containing all non-blocked paths from seeds
to ``r``.  The estimator identities are (Lemma 1 / Section IV-C):

* ``Δ_S(B) = n · E[f_R(B)]`` where ``f_R(B) = 1`` iff ``r`` is inactive
  without boosting but active upon boosting ``B``;
* ``μ(B) = n · E[f⁻_R(B)] ≤ Δ_S(B)`` where ``f⁻_R(B) = I(B ∩ C_R ≠ ∅)``
  and ``C_R = {v : f_R({v}) = 1}`` is the *critical node set* — a submodular
  lower bound.

Sampling runs on the shared vectorized engine
(:class:`repro.engine.SamplingEngine`): phase I is a frontier-based backward
0–1 BFS over the in-CSR with edge states held in a flat ``int8`` array
keyed by dense edge id (no per-edge ``(u, v)`` dict), and the batch entry
points (:func:`sample_prr_batch`, :func:`sample_critical_batch`) amortize
engine setup across hundreds of roots.  :func:`sample_prr_lanes` is the
lane-parallel fast path: whole lane batches explore at once over per-lane
hashed worlds (bit-for-bit the ``world_seed`` single-sample path, pinned
in ``tests/test_lanes.py``) and compress straight into the arena.  This
module keeps the domain side:

* :class:`PRRGraph` — the compressed graph with ``f_R`` evaluation and
  incremental "which single node would activate the root" queries used by
  the greedy selection over ``Δ̂``, all mask-vectorized,
* :class:`PRRArena` — a whole *collection* of compressed PRR-graphs in
  shared flat arrays (node-global CSR, edge CSR with arena-global
  endpoints, critical-set CSR, per-graph status codes), so the selection
  and estimation kernels in :mod:`repro.core.estimator` evaluate
  ``f``/``f⁻``/``A_R`` batch-vectorized across *all* graphs at once and
  worker processes ship a handful of large arrays instead of pickled
  object lists.  :class:`PRRGraph` stays available as a lazy per-graph
  view (``arena[i]``),
* :func:`_compress_core` — phase II (super-seed merge, dead-node removal,
  live shortcut edges to the root) returning plain arrays, shared by the
  object path and the arena path so seeded equivalence is testable
  end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..engine import SamplingEngine
from ..engine import world as engine_world
from ..engine.batch import ACTIVATED, BOOSTABLE, HOPELESS, PhaseOneResult
from ..engine.hashing import hash_draw as _hash_draw
from ..engine.traversal import grow_reachable

from ..graphs.digraph import DiGraph

__all__ = [
    "EdgeState",
    "PRRGraph",
    "PRRArena",
    "sample_prr_graph",
    "sample_prr_batch",
    "sample_prr_arena",
    "sample_prr_lanes",
    "sample_critical_set",
    "sample_critical_batch",
    "prr_graph_from_phase1",
    "ACTIVATED",
    "HOPELESS",
    "BOOSTABLE",
]


class EdgeState:
    """Edge states of the deterministic copy ``g`` (Definition 3).

    The values are the engine's encoding — a single source of truth for
    the flat ``int8`` state arrays.
    """

    LIVE = engine_world.LIVE
    BOOST = engine_world.BOOST  # live-upon-boost
    BLOCKED = engine_world.BLOCKED


_EMPTY_IDS = np.empty(0, dtype=np.int64)


@dataclass
class PRRGraph:
    """A sampled (and, when boostable, compressed) PRR-graph.

    Local node ids: ``0`` is the merged super-seed; the root is
    ``root_local``.  ``node_globals[local]`` maps back to graph node ids
    (``-1`` for the super-seed).  Edges are stored as parallel arrays; an
    edge is traversable for boost set ``B`` when it is live, or when it is
    live-upon-boost and its head's global id is in ``B``.
    """

    root: int
    status: str
    node_globals: List[int] = field(default_factory=list)
    edge_src: List[int] = field(default_factory=list)
    edge_dst: List[int] = field(default_factory=list)
    edge_boost: List[bool] = field(default_factory=list)
    root_local: int = -1
    critical: FrozenSet[int] = frozenset()
    uncompressed_nodes: int = 0
    uncompressed_edges: int = 0
    _arrays: Optional[Tuple[np.ndarray, ...]] = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    @property
    def is_boostable(self) -> bool:
        return self.status == BOOSTABLE

    @property
    def estimated_bytes(self) -> int:
        """Approximate storage footprint of the compressed graph.

        Counts the edge arrays (two ints and a flag per edge), the
        local-to-global map, and the critical set — the quantities behind
        the paper's Table 2/3 memory columns.
        """
        return (
            len(self.edge_src) * 17  # src + dst (8 each) + boost flag
            + len(self.node_globals) * 8
            + len(self.critical) * 8
        )

    @property
    def num_nodes(self) -> int:
        return len(self.node_globals)

    @property
    def num_edges(self) -> int:
        return len(self.edge_src)

    # ------------------------------------------------------------------
    def _edge_arrays(self) -> Tuple[np.ndarray, ...]:
        """Cached numpy views of the edge lists plus per-edge head globals."""
        if self._arrays is None:
            src = np.asarray(self.edge_src, dtype=np.int64)
            dst = np.asarray(self.edge_dst, dtype=np.int64)
            boost = np.asarray(self.edge_boost, dtype=bool)
            globals_ = np.asarray(self.node_globals, dtype=np.int64)
            head_globals = globals_[dst] if dst.size else _EMPTY_IDS
            self._arrays = (src, dst, boost, globals_, head_globals)
        return self._arrays

    def _boosted_heads(self, boost: AbstractSet[int]) -> np.ndarray:
        """Per-edge mask: the edge's head is in the boost set."""
        _src, _dst, _eb, _globals, head_globals = self._edge_arrays()
        if not boost or head_globals.size == 0:
            return np.zeros(head_globals.size, dtype=bool)
        return np.isin(head_globals, np.fromiter(boost, dtype=np.int64))

    def _forward_reachable(self, boosted_heads: np.ndarray) -> np.ndarray:
        """Nodes reachable from the super-seed via traversable edges."""
        src, dst, edge_boost, _globals, _hg = self._edge_arrays()
        traversable = ~edge_boost | boosted_heads
        reached = np.zeros(self.num_nodes, dtype=bool)
        reached[0] = True
        return grow_reachable(src, dst, reached, traversable)

    def _backward_reachable(self, boosted_heads: np.ndarray) -> np.ndarray:
        """Nodes from which the root is reachable via traversable edges.

        The edge ``u -> v`` is traversable when live, or when its head ``v``
        is boosted.
        """
        src, dst, edge_boost, _globals, _hg = self._edge_arrays()
        traversable = ~edge_boost | boosted_heads
        reached = np.zeros(self.num_nodes, dtype=bool)
        reached[self.root_local] = True
        return grow_reachable(dst, src, reached, traversable)

    def f(self, boost: AbstractSet[int]) -> bool:
        """Evaluate ``f_R(B)``: root activated upon boosting ``B``.

        Always ``False`` for non-boostable graphs (activated roots need no
        boost; hopeless roots cannot be activated with ``≤ k`` boosts).
        """
        if not self.is_boostable:
            return False
        boosted_heads = self._boosted_heads(boost)
        return bool(self._forward_reachable(boosted_heads)[self.root_local])

    def f_lower(self, boost: AbstractSet[int]) -> bool:
        """Evaluate ``f⁻_R(B) = I(B ∩ C_R ≠ ∅)`` (the submodular proxy)."""
        if not self.is_boostable:
            return False
        return not self.critical.isdisjoint(boost)

    def frontier_nodes(self, boost: AbstractSet[int]) -> FrozenSet[int]:
        """Heads of boost edges leaving the super-seed's reachable region.

        Boosting any of them strictly enlarges the region even when no
        single node activates the root outright — the tie-break the greedy
        ``Δ̂`` selection uses to make progress on supermodular chains, where
        every single-node marginal gain is zero.
        """
        if not self.is_boostable:
            return frozenset()
        boosted_heads = self._boosted_heads(boost)
        forward = self._forward_reachable(boosted_heads)
        if forward[self.root_local]:
            return frozenset()
        src, dst, edge_boost, _globals, head_globals = self._edge_arrays()
        crossing = edge_boost & forward[src] & ~forward[dst] & ~boosted_heads
        return frozenset(np.unique(head_globals[crossing]).tolist())

    def activating_nodes(self, boost: AbstractSet[int]) -> FrozenSet[int]:
        """``A_R(B) = {v : f_R(B ∪ {v}) = 1}`` — single-node completions.

        Computed with two linear traversals: let ``Z`` be the super-seed's
        forward-traversable region and ``Y`` the root's backward region;
        adding ``v`` helps exactly when some live-upon-boost edge crosses
        from ``Z`` into ``v ∈ Y`` (a simple path enters ``v`` once, so only
        one of ``v``'s boost in-edges can be on it).

        Returns an empty set when the root is already activated by ``B``.
        ``A_R(∅)`` is exactly the critical set ``C_R``.
        """
        if not self.is_boostable:
            return frozenset()
        boosted_heads = self._boosted_heads(boost)
        forward = self._forward_reachable(boosted_heads)
        if forward[self.root_local]:
            return frozenset()
        backward = self._backward_reachable(boosted_heads)
        src, dst, edge_boost, _globals, head_globals = self._edge_arrays()
        crossing = edge_boost & forward[src] & backward[dst] & ~boosted_heads
        return frozenset(np.unique(head_globals[crossing]).tolist())


# ----------------------------------------------------------------------
# Sampling (engine-backed)
# ----------------------------------------------------------------------
def prr_graph_from_phase1(result: PhaseOneResult, k: int) -> PRRGraph:
    """Assemble a :class:`PRRGraph` from a raw phase-I exploration."""
    if result.activated:
        return PRRGraph(root=result.root, status=ACTIVATED)
    if result.seeds_found.size == 0:
        return PRRGraph(
            root=result.root,
            status=HOPELESS,
            uncompressed_nodes=result.node_count,
            uncompressed_edges=int(result.edge_src.size),
        )
    return _graph_from_core(
        result.root,
        _compress_core(
            result.root,
            result.seeds_found,
            result.edge_src,
            result.edge_dst,
            result.edge_boost,
            k,
            result.node_count,
        ),
    )


def sample_prr_graph(
    graph: DiGraph,
    seeds: AbstractSet[int],
    k: int,
    rng: np.random.Generator,
    root: int | None = None,
    world_seed: int | None = None,
) -> PRRGraph:
    """Sample one PRR-graph (Algorithm 1 + Phase-II compression).

    Parameters mirror the paper: ``k`` drives the distance pruning (paths
    needing more than ``k`` live-upon-boost edges can never become live).
    ``world_seed`` (optional) fixes the entire deterministic world by
    hashing, so repeated calls with the same seed and root see identical
    edge states regardless of ``k`` — used by paired ablations.
    """
    engine = SamplingEngine.for_graph(graph)
    r = int(rng.integers(graph.n)) if root is None else int(root)
    seed_set = seeds if isinstance(seeds, frozenset) else frozenset(int(s) for s in seeds)
    if r in seed_set:
        return PRRGraph(root=r, status=ACTIVATED)
    result = engine.prr_phase1(
        engine.seeds_mask(seed_set), r, k, rng=rng, world_seed=world_seed
    )
    return prr_graph_from_phase1(result, k)


def sample_prr_batch(
    graph: DiGraph,
    seeds: AbstractSet[int],
    k: int,
    rng: np.random.Generator,
    count: int,
    roots: Sequence[int] | None = None,
) -> List[PRRGraph]:
    """Sample ``count`` PRR-graphs, looping phase I over one shared engine.

    Equivalent to ``count`` :func:`sample_prr_graph` calls on the same RNG;
    the engine's stamp buffers and seed mask are reused across the batch.
    """
    engine = SamplingEngine.for_graph(graph)
    mask = engine.seeds_mask(seeds)
    out: List[PRRGraph] = []
    for i in range(count):
        r = int(rng.integers(graph.n)) if roots is None else int(roots[i])
        if mask[r]:
            out.append(PRRGraph(root=r, status=ACTIVATED))
            continue
        result = engine.prr_phase1(mask, r, k, rng=rng)
        out.append(prr_graph_from_phase1(result, k))
    return out


def _extend_arena_from_lanes(arena: PRRArena, ph, k: int) -> None:
    """Append one lane batch to ``arena`` — phase-II compression straight
    from the lane output slices, no :class:`PhaseOneResult` objects."""
    edge_indptr = ph.edge_indptr
    seed_indptr = ph.seed_indptr
    for i in range(ph.roots.size):
        root = int(ph.roots[i])
        if ph.activated[i]:
            arena.add_activated(root)
            continue
        lo, hi = int(edge_indptr[i]), int(edge_indptr[i + 1])
        slo, shi = int(seed_indptr[i]), int(seed_indptr[i + 1])
        if shi == slo:
            arena.add_hopeless(root, int(ph.node_count[i]), hi - lo)
            continue
        arena.add_core(
            root,
            _compress_core(
                root,
                ph.seed_nodes[slo:shi],
                ph.edge_src[lo:hi],
                ph.edge_dst[lo:hi],
                ph.edge_boost[lo:hi],
                k,
                int(ph.node_count[i]),
            ),
        )


def sample_prr_lanes(
    graph: DiGraph,
    seeds: AbstractSet[int],
    k: int,
    rng: Optional[np.random.Generator],
    count: int,
    roots: Sequence[int] | None = None,
    world_seeds: Sequence[int] | None = None,
    arena: Optional[PRRArena] = None,
    lane_width: int = 64,
) -> PRRArena:
    """Sample ``count`` PRR-graphs with the multi-source lane kernel.

    ``lane_width`` roots advance per frontier step; each sample's world is
    fixed by hashing a per-lane seed, so sample ``i`` is bit-for-bit the
    graph :func:`sample_prr_graph` returns for ``root=roots[i],
    world_seed=world_seeds[i]`` (``tests/test_lanes.py`` pins this).
    Roots and world seeds default to two upfront draws from ``rng``
    (uniform roots, uniform seeds) — a different, equally valid stream
    than :func:`sample_prr_arena`, which stays the RNG-consumption oracle.
    Compression lands straight in the arena; no per-sample Python objects.
    """
    engine = SamplingEngine.for_graph(graph)
    mask = engine.seeds_mask(seeds)
    if arena is None:
        arena = PRRArena(graph.n)
    if roots is None:
        if rng is None:
            raise ValueError("rng is required when roots are not given")
        all_roots = rng.integers(graph.n, size=count)
    else:
        if len(roots) < count:
            raise ValueError(f"need {count} roots, got {len(roots)}")
        all_roots = np.asarray(roots, dtype=np.int64)[:count]
    if world_seeds is None:
        if rng is None:
            raise ValueError("rng is required when world_seeds are not given")
        all_seeds = rng.integers(
            np.iinfo(np.int64).max, size=count, dtype=np.int64
        ).astype(np.uint64)
    else:
        if len(world_seeds) < count:
            raise ValueError(f"need {count} world_seeds, got {len(world_seeds)}")
        all_seeds = np.asarray(world_seeds).astype(np.uint64)[:count]
    done = 0
    while done < count:
        b = min(lane_width, count - done)
        ph = engine.prr_phase1_lanes(
            mask, all_roots[done : done + b], k, all_seeds[done : done + b]
        )
        _extend_arena_from_lanes(arena, ph, k)
        done += b
    return arena


def sample_critical_set(
    graph: DiGraph,
    seeds: AbstractSet[int],
    rng: np.random.Generator,
    root: int | None = None,
) -> Tuple[str, FrozenSet[int], int]:
    """Sample only the critical node set ``C_R`` (PRR-Boost-LB fast path).

    A node is critical when a seed-to-root path exists with exactly one
    live-upon-boost edge whose head is that node, so the backward search can
    stop at distance 1 regardless of ``k`` (Section V-C).

    Returns ``(status, critical_set, explored_edges)``; the critical set is
    empty for activated/hopeless roots, which still count as samples for the
    ``μ̂`` estimator.
    """
    return SamplingEngine.for_graph(graph).critical_set(seeds, rng, root=root)


def sample_critical_batch(
    graph: DiGraph,
    seeds: AbstractSet[int],
    rng: np.random.Generator,
    count: int,
) -> List[Tuple[str, FrozenSet[int], int]]:
    """Sample ``count`` critical sets on one shared engine (lane-driven;
    :meth:`~repro.engine.SamplingEngine.critical_set` is the oracle)."""
    return SamplingEngine.for_graph(graph).sample_critical_batch(seeds, rng, count)


# ----------------------------------------------------------------------
# Phase II compression (vectorized over the collected edge arrays)
# ----------------------------------------------------------------------
_BIG = np.int64(1) << 40


def _bfs01_arrays(
    nn: int,
    tails: np.ndarray,
    heads: np.ndarray,
    weights: np.ndarray,
    starts: np.ndarray,
) -> np.ndarray:
    """0-1 shortest distances from ``starts`` by scatter-min relaxation.

    Converges in O(diameter) passes of O(edges) vectorized work — the
    compressed graphs are small and shallow, so this beats the deque BFS
    it replaced by a wide margin.
    """
    dist = np.full(nn, _BIG, dtype=np.int64)
    dist[starts] = 0
    while True:
        cand = dist[tails] + weights
        relax = cand < dist[heads]
        if not relax.any():
            return dist
        np.minimum.at(dist, heads[relax], cand[relax])


# ``_compress_core`` return shape: (status, node_globals, edge_src,
# edge_dst, edge_boost, root_local, critical, uncompressed_nodes,
# uncompressed_edges) — plain arrays, consumed by both the PRRGraph
# object path and the PRRArena append path.
_CoreResult = Tuple[
    str, np.ndarray, np.ndarray, np.ndarray, np.ndarray, int, np.ndarray, int, int
]
_EMPTY_EB = np.empty(0, dtype=bool)


def _core_non_boostable(
    status: str, un_nodes: int, un_edges: int
) -> _CoreResult:
    return (status, _EMPTY_IDS, _EMPTY_IDS, _EMPTY_IDS, _EMPTY_EB, -1, _EMPTY_IDS, un_nodes, un_edges)


def _graph_from_core(root: int, core: _CoreResult) -> PRRGraph:
    """Materialize a :class:`PRRGraph` object from ``_compress_core`` output."""
    status, ng, es, ed, eb, rl, crit, un_nodes, un_edges = core
    if status == ACTIVATED:
        return PRRGraph(root=root, status=ACTIVATED)
    if status == HOPELESS:
        return PRRGraph(
            root=root,
            status=HOPELESS,
            uncompressed_nodes=un_nodes,
            uncompressed_edges=un_edges,
        )
    return PRRGraph(
        root=root,
        status=BOOSTABLE,
        node_globals=ng.tolist(),
        edge_src=es.tolist(),
        edge_dst=ed.tolist(),
        edge_boost=eb.tolist(),
        root_local=rl,
        critical=frozenset(crit.tolist()),
        uncompressed_nodes=un_nodes,
        uncompressed_edges=un_edges,
    )


def _compress_core(
    r: int,
    seeds_found: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    boost: np.ndarray,
    k: int,
    uncompressed_nodes: int,
) -> _CoreResult:
    """Phase II: merge the super-seed, prune, shortcut, and clean up.

    Operates on the phase-I edge arrays with a compacted local id space;
    the super-seed is local id ``nn`` during the rewrite and becomes 0 in
    the output, matching the paper's Figure 2 compression.  Returns plain
    arrays (see ``_CoreResult``) so the arena path never constructs
    Python lists.
    """
    num_edges = int(src.size)
    nodes = np.unique(np.concatenate([src, dst, seeds_found, [r]]))
    nn = int(nodes.size)
    ls = np.searchsorted(nodes, src)
    ld = np.searchsorted(nodes, dst)
    lseeds = np.searchsorted(nodes, seeds_found)
    lr = int(np.searchsorted(nodes, r))
    wi = boost.astype(np.int64)

    def hopeless() -> _CoreResult:
        return _core_non_boostable(HOPELESS, uncompressed_nodes, num_edges)

    # dS: min #boost-edges from any seed (forward direction).
    d_seed = _bfs01_arrays(nn, ls, ld, wi, lseeds)
    if d_seed[lr] == 0:  # defensive; Phase I should have caught this
        return _core_non_boostable(ACTIVATED, 0, 0)
    merged = d_seed == 0

    # d'_r: min #boost-edges to the root avoiding the super-seed — a
    # backward relaxation over reversed edges that never enters the merged
    # region.
    rev = ~merged[ls]
    d_root = _bfs01_arrays(
        nn, ld[rev], ls[rev], wi[rev], np.array([lr], dtype=np.int64)
    )

    # Critical nodes: boost edge from the merged region into v, plus a live
    # path from v to the root (both measured before the shortcut rewrite).
    crit_edges = boost & merged[ls] & ~merged[ld] & (d_root[ld] == 0)
    critical = nodes[np.unique(ld[crit_edges])]

    # Nodes that can sit on a <=k-boost path from super-seed to root.
    kept = ~merged & (d_seed + d_root <= k)
    if not kept[lr]:
        # Root unreachable within budget after exact accounting.
        return hopeless()

    # Rebuild edges over {super-seed} ∪ kept, applying the live-shortcut
    # rule: a non-root node with a live path to the root keeps no out-edges
    # and gains a direct live edge to the root.
    shortcut = kept & (d_root == 0)
    shortcut[lr] = False
    src_merged = merged[ls]
    keep_edge = (
        (src_merged | (kept[ls] & ~shortcut[ls])) & kept[ld] & (ls != lr)
    )
    super_id = nn  # local id of the super-seed during the rewrite
    src_key = np.where(src_merged[keep_edge], super_id, ls[keep_edge])
    # Deduplicate (src, dst, boost) triples via integer encoding.
    enc = (src_key * (nn + 1) + ld[keep_edge]) * 2 + wi[keep_edge]
    shortcut_ids = np.flatnonzero(shortcut)
    enc = np.unique(
        np.concatenate([enc, (shortcut_ids * (nn + 1) + lr) * 2])
    )
    e_pair = enc >> 1
    e_src = e_pair // (nn + 1)
    e_dst = e_pair % (nn + 1)
    e_boost = (enc & 1).astype(bool)

    # Cleanup: keep only nodes on super-seed -> root paths.
    from_super = np.zeros(nn + 1, dtype=bool)
    from_super[super_id] = True
    grow_reachable(e_src, e_dst, from_super)
    to_root = np.zeros(nn + 1, dtype=bool)
    to_root[lr] = True
    grow_reachable(e_dst, e_src, to_root)
    alive = from_super & to_root
    if not (alive[lr] and alive[super_id]):
        return hopeless()
    edge_alive = alive[e_src] & alive[e_dst]

    # Local id assignment: super-seed = 0, the rest ordered by global id.
    alive_real = np.flatnonzero(alive[:nn])
    local_out = np.zeros(nn + 1, dtype=np.int64)
    local_out[alive_real] = np.arange(1, alive_real.size + 1)
    local_out[super_id] = 0

    node_globals = np.concatenate(
        [np.array([-1], dtype=np.int64), nodes[alive_real]]
    )
    return (
        BOOSTABLE,
        node_globals,
        local_out[e_src[edge_alive]],
        local_out[e_dst[edge_alive]],
        e_boost[edge_alive],
        int(local_out[lr]),
        critical,
        uncompressed_nodes,
        num_edges,
    )


# ----------------------------------------------------------------------
# PRRArena: a whole collection in shared flat arrays
# ----------------------------------------------------------------------
_STATUS_CODE = {ACTIVATED: 0, HOPELESS: 1, BOOSTABLE: 2}
_STATUS_NAME = (ACTIVATED, HOPELESS, BOOSTABLE)
_CODE_BOOSTABLE = 2


class PRRArena:
    """All compressed PRR-graphs of a collection, stored flat.

    Canonical storage (one entry per graph ``i`` of ``len(self)``):

    * ``roots``/``status``/``root_local``/``uncomp_nodes``/``uncomp_edges``
      — per-graph scalars (``status`` is an int8 code, see
      ``status_names``),
    * ``node_indptr`` → ``node_globals`` — the local→global node map
      (int32; slot 0 of every boostable graph is the merged super-seed,
      stored as ``-1``),
    * ``edge_indptr`` → ``edge_src_local``/``edge_dst_local``/``edge_boost``
      — edges in *graph-local* ids (so arenas merge by plain
      concatenation),
    * ``crit_indptr`` → ``crit_nodes`` — the critical node sets ``C_R``.

    Derived, cached per consolidation: arena-global edge endpoints
    (local id + the graph's node base), per-edge head global ids and graph
    ids, per-graph root positions — the arrays the vectorized selection
    kernels in :mod:`repro.core.estimator` run on.  Appends buffer into
    Python lists and consolidate lazily, so building an arena during IMM
    sampling is O(sample size) amortized.

    The arena is a read-only sequence of :class:`PRRGraph` views:
    ``arena[i]`` materializes graph ``i`` on demand (compat with every
    object-based caller), and ``payload()``/``from_payload`` move whole
    collections between processes as a handful of large arrays.
    """

    status_names = _STATUS_NAME

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = int(n)
        self.clear()

    def clear(self) -> None:
        """Reset to the empty state (equivalent to a fresh arena over ``n``).

        The one definition of "empty": ``__init__`` delegates here, and
        warm facades (:class:`repro.api.Session`) call it to recycle one
        arena across queries — a cleared arena is indistinguishable from
        a new one to the samplers and estimators.
        """
        self._roots = np.empty(0, dtype=np.int64)
        self._status = np.empty(0, dtype=np.int8)
        self._root_local = np.empty(0, dtype=np.int64)
        self._un_nodes = np.empty(0, dtype=np.int64)
        self._un_edges = np.empty(0, dtype=np.int64)
        self._node_indptr = np.zeros(1, dtype=np.int64)
        self._node_globals = np.empty(0, dtype=np.int32)
        self._edge_indptr = np.zeros(1, dtype=np.int64)
        self._edge_src = np.empty(0, dtype=np.int32)
        self._edge_dst = np.empty(0, dtype=np.int32)
        self._edge_boost = np.empty(0, dtype=bool)
        self._crit_indptr = np.zeros(1, dtype=np.int64)
        self._crit_nodes = np.empty(0, dtype=np.int32)
        # Pending per-graph appends, consolidated lazily.
        self._p_scalars: List[Tuple[int, int, int, int, int]] = []
        self._p_nodes: List[np.ndarray] = []
        self._p_esrc: List[np.ndarray] = []
        self._p_edst: List[np.ndarray] = []
        self._p_eboost: List[np.ndarray] = []
        self._p_crit: List[np.ndarray] = []
        self._derived = None

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------
    def _append(
        self,
        root: int,
        code: int,
        node_globals: np.ndarray,
        esrc: np.ndarray,
        edst: np.ndarray,
        eboost: np.ndarray,
        root_local: int,
        critical: np.ndarray,
        un_nodes: int,
        un_edges: int,
    ) -> None:
        self._p_scalars.append(
            (int(root), code, int(root_local), int(un_nodes), int(un_edges))
        )
        self._p_nodes.append(np.asarray(node_globals, dtype=np.int32))
        self._p_esrc.append(np.asarray(esrc, dtype=np.int32))
        self._p_edst.append(np.asarray(edst, dtype=np.int32))
        self._p_eboost.append(np.asarray(eboost, dtype=bool))
        self._p_crit.append(np.asarray(critical, dtype=np.int32))
        self._derived = None

    def add_activated(self, root: int) -> None:
        self._append(root, 0, _EMPTY_IDS, _EMPTY_IDS, _EMPTY_IDS, _EMPTY_EB, -1, _EMPTY_IDS, 0, 0)

    def add_hopeless(self, root: int, un_nodes: int, un_edges: int) -> None:
        self._append(
            root, 1, _EMPTY_IDS, _EMPTY_IDS, _EMPTY_IDS, _EMPTY_EB, -1, _EMPTY_IDS, un_nodes, un_edges
        )

    def add_core(self, root: int, core: _CoreResult) -> None:
        """Append one ``_compress_core`` result."""
        status, ng, es, ed, eb, rl, crit, un_nodes, un_edges = core
        if status == ACTIVATED:
            self.add_activated(root)
        elif status == HOPELESS:
            self.add_hopeless(root, un_nodes, un_edges)
        else:
            self._append(root, 2, ng, es, ed, eb, rl, crit, un_nodes, un_edges)

    def add_phase1(self, result: PhaseOneResult, k: int) -> None:
        """Append one phase-I exploration, compressing when boostable.

        Mirrors :func:`prr_graph_from_phase1` without constructing a
        :class:`PRRGraph`.
        """
        if result.activated:
            self.add_activated(result.root)
            return
        if result.seeds_found.size == 0:
            self.add_hopeless(
                result.root, result.node_count, int(result.edge_src.size)
            )
            return
        self.add_core(
            result.root,
            _compress_core(
                result.root,
                result.seeds_found,
                result.edge_src,
                result.edge_dst,
                result.edge_boost,
                k,
                result.node_count,
            ),
        )

    def add_graph(self, prr: PRRGraph) -> None:
        """Append an existing :class:`PRRGraph` object."""
        code = _STATUS_CODE[prr.status]
        if code != _CODE_BOOSTABLE:
            self._append(
                prr.root, code, _EMPTY_IDS, _EMPTY_IDS, _EMPTY_IDS, _EMPTY_EB, -1,
                _EMPTY_IDS, prr.uncompressed_nodes, prr.uncompressed_edges,
            )
            return
        crit = np.fromiter(sorted(prr.critical), dtype=np.int32, count=len(prr.critical))
        self._append(
            prr.root,
            code,
            np.asarray(prr.node_globals, dtype=np.int32),
            np.asarray(prr.edge_src, dtype=np.int32),
            np.asarray(prr.edge_dst, dtype=np.int32),
            np.asarray(prr.edge_boost, dtype=bool),
            prr.root_local,
            crit,
            prr.uncompressed_nodes,
            prr.uncompressed_edges,
        )

    @classmethod
    def from_graphs(cls, n: int, graphs: Iterable[PRRGraph]) -> "PRRArena":
        arena = cls(n)
        for g in graphs:
            arena.add_graph(g)
        return arena

    # ------------------------------------------------------------------
    # Consolidation
    # ------------------------------------------------------------------
    @staticmethod
    def _cat(values: np.ndarray, chunks: List[np.ndarray], dtype) -> np.ndarray:
        return np.concatenate([values] + chunks).astype(dtype, copy=False)

    @staticmethod
    def _extend_indptr(
        indptr: np.ndarray, chunks: List[np.ndarray]
    ) -> np.ndarray:
        counts = np.fromiter(map(len, chunks), dtype=np.int64, count=len(chunks))
        return np.concatenate([indptr, indptr[-1] + np.cumsum(counts)])

    def _commit(self) -> None:
        if not self._p_scalars:
            return
        scal = np.array(self._p_scalars, dtype=np.int64)
        self._roots = np.concatenate([self._roots, scal[:, 0]])
        self._status = np.concatenate(
            [self._status, scal[:, 1].astype(np.int8)]
        )
        self._root_local = np.concatenate([self._root_local, scal[:, 2]])
        self._un_nodes = np.concatenate([self._un_nodes, scal[:, 3]])
        self._un_edges = np.concatenate([self._un_edges, scal[:, 4]])
        self._node_indptr = self._extend_indptr(self._node_indptr, self._p_nodes)
        self._node_globals = self._cat(self._node_globals, self._p_nodes, np.int32)
        self._edge_indptr = self._extend_indptr(self._edge_indptr, self._p_esrc)
        self._edge_src = self._cat(self._edge_src, self._p_esrc, np.int32)
        self._edge_dst = self._cat(self._edge_dst, self._p_edst, np.int32)
        self._edge_boost = self._cat(self._edge_boost, self._p_eboost, bool)
        self._crit_indptr = self._extend_indptr(self._crit_indptr, self._p_crit)
        self._crit_nodes = self._cat(self._crit_nodes, self._p_crit, np.int32)
        self._p_scalars = []
        self._p_nodes = []
        self._p_esrc = []
        self._p_edst = []
        self._p_eboost = []
        self._p_crit = []
        self._derived = None

    # ------------------------------------------------------------------
    # Read access (consolidating lazily)
    # ------------------------------------------------------------------
    @property
    def num_graphs(self) -> int:
        return self._roots.size + len(self._p_scalars)

    def __len__(self) -> int:
        return self.num_graphs

    def __bool__(self) -> bool:
        # A sampled-but-empty arena is still truthy context-wise; mirror
        # list semantics instead (empty collection is falsy).
        return self.num_graphs > 0

    @property
    def roots(self) -> np.ndarray:
        self._commit()
        return self._roots

    @property
    def status_codes(self) -> np.ndarray:
        self._commit()
        return self._status

    @property
    def root_local(self) -> np.ndarray:
        self._commit()
        return self._root_local

    @property
    def uncomp_nodes(self) -> np.ndarray:
        self._commit()
        return self._un_nodes

    @property
    def uncomp_edges(self) -> np.ndarray:
        self._commit()
        return self._un_edges

    @property
    def node_indptr(self) -> np.ndarray:
        self._commit()
        return self._node_indptr

    @property
    def node_globals(self) -> np.ndarray:
        self._commit()
        return self._node_globals

    @property
    def edge_indptr(self) -> np.ndarray:
        self._commit()
        return self._edge_indptr

    @property
    def edge_src_local(self) -> np.ndarray:
        self._commit()
        return self._edge_src

    @property
    def edge_dst_local(self) -> np.ndarray:
        self._commit()
        return self._edge_dst

    @property
    def edge_boost(self) -> np.ndarray:
        self._commit()
        return self._edge_boost

    @property
    def crit_indptr(self) -> np.ndarray:
        self._commit()
        return self._crit_indptr

    @property
    def crit_nodes(self) -> np.ndarray:
        self._commit()
        return self._crit_nodes

    def flat(self):
        """The derived arena-global arrays the selection kernels run on.

        Returns a dict with ``node_base``, ``total_nodes``, ``edge_src`` /
        ``edge_dst`` (arena-global node positions), ``edge_head_global``
        (graph node id of each edge's head), ``edge_gid`` (owning graph of
        each edge), ``root_arena`` (arena position of each boostable
        graph's root, ``-1`` otherwise) and ``boostable`` (per-graph
        mask).  Cached until the next append.
        """
        self._commit()
        if self._derived is None:
            node_base = self._node_indptr[:-1]
            edge_counts = np.diff(self._edge_indptr)
            ebase = np.repeat(node_base, edge_counts)
            esrc = self._edge_src.astype(np.int64) + ebase
            edst = self._edge_dst.astype(np.int64) + ebase
            head_global = (
                self._node_globals[edst].astype(np.int64)
                if edst.size
                else _EMPTY_IDS
            )
            gcount = self._roots.size
            edge_gid = np.repeat(
                np.arange(gcount, dtype=np.int64), edge_counts
            )
            boostable = self._status == _CODE_BOOSTABLE
            root_arena = np.where(
                boostable, node_base + self._root_local, -1
            )
            crit_gid = np.repeat(
                np.arange(gcount, dtype=np.int64), np.diff(self._crit_indptr)
            )
            self._derived = {
                "node_base": node_base,
                "total_nodes": int(self._node_indptr[-1]),
                "edge_src": esrc,
                "edge_dst": edst,
                "edge_head_global": head_global,
                "edge_gid": edge_gid,
                "root_arena": root_arena,
                "boostable": boostable,
                "crit_gid": crit_gid,
            }
        return self._derived

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def critical_array(self, i: int) -> np.ndarray:
        """Critical node set of graph ``i`` as a sorted int32 array.

        Graphs still in the pending buffer are served directly — a
        sample-then-read loop (the single-sample ``SetSampler`` protocol)
        must not pay a full consolidation per sample.
        """
        if i < 0:
            i += self.num_graphs
        committed = self._roots.size
        if i >= committed:
            return self._p_crit[i - committed]
        return self._crit_nodes[self._crit_indptr[i] : self._crit_indptr[i + 1]]

    def critical_frozenset(self, i: int) -> FrozenSet[int]:
        return frozenset(self.critical_array(i).tolist())

    def critical_csr(self, start: int = 0, stop: Optional[int] = None):
        """``(counts, values)`` of the critical sets of graphs
        ``[start, stop)`` — the payload the μ maximization consumes."""
        self._commit()
        stop = self._roots.size if stop is None else stop
        lo, hi = int(self._crit_indptr[start]), int(self._crit_indptr[stop])
        counts = np.diff(self._crit_indptr[start : stop + 1])
        return counts, self._crit_nodes[lo:hi]

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(len(self)))]
        self._commit()
        if i < 0:
            i += self._roots.size
        if not 0 <= i < self._roots.size:
            raise IndexError(i)
        code = int(self._status[i])
        if code != _CODE_BOOSTABLE:
            return PRRGraph(
                root=int(self._roots[i]),
                status=_STATUS_NAME[code],
                uncompressed_nodes=int(self._un_nodes[i]),
                uncompressed_edges=int(self._un_edges[i]),
            )
        nlo, nhi = self._node_indptr[i], self._node_indptr[i + 1]
        elo, ehi = self._edge_indptr[i], self._edge_indptr[i + 1]
        return PRRGraph(
            root=int(self._roots[i]),
            status=BOOSTABLE,
            node_globals=self._node_globals[nlo:nhi].tolist(),
            edge_src=self._edge_src[elo:ehi].tolist(),
            edge_dst=self._edge_dst[elo:ehi].tolist(),
            edge_boost=self._edge_boost[elo:ehi].tolist(),
            root_local=int(self._root_local[i]),
            critical=self.critical_frozenset(i),
            uncompressed_nodes=int(self._un_nodes[i]),
            uncompressed_edges=int(self._un_edges[i]),
        )

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PRRArena({len(self)} graphs over n={self.n})"

    # ------------------------------------------------------------------
    # Merge / IPC
    # ------------------------------------------------------------------
    def extend_arena(self, other: "PRRArena") -> None:
        """Append all graphs of ``other`` (plain array concatenation)."""
        if other.n != self.n:
            raise ValueError("arena node counts differ")
        self._commit()
        other._commit()
        self._roots = np.concatenate([self._roots, other._roots])
        self._status = np.concatenate([self._status, other._status])
        self._root_local = np.concatenate([self._root_local, other._root_local])
        self._un_nodes = np.concatenate([self._un_nodes, other._un_nodes])
        self._un_edges = np.concatenate([self._un_edges, other._un_edges])
        self._node_globals = np.concatenate([self._node_globals, other._node_globals])
        self._node_indptr = np.concatenate(
            [self._node_indptr, self._node_indptr[-1] + other._node_indptr[1:]]
        )
        self._edge_src = np.concatenate([self._edge_src, other._edge_src])
        self._edge_dst = np.concatenate([self._edge_dst, other._edge_dst])
        self._edge_boost = np.concatenate([self._edge_boost, other._edge_boost])
        self._edge_indptr = np.concatenate(
            [self._edge_indptr, self._edge_indptr[-1] + other._edge_indptr[1:]]
        )
        self._crit_nodes = np.concatenate([self._crit_nodes, other._crit_nodes])
        self._crit_indptr = np.concatenate(
            [self._crit_indptr, self._crit_indptr[-1] + other._crit_indptr[1:]]
        )
        self._derived = None

    def payload(self) -> tuple:
        """The consolidated arrays — cheap to pickle across processes."""
        self._commit()
        return (
            self.n,
            self._roots,
            self._status,
            self._root_local,
            self._un_nodes,
            self._un_edges,
            self._node_indptr,
            self._node_globals,
            self._edge_indptr,
            self._edge_src,
            self._edge_dst,
            self._edge_boost,
            self._crit_indptr,
            self._crit_nodes,
        )

    @classmethod
    def from_payload(cls, payload: tuple) -> "PRRArena":
        arena = cls(payload[0])
        (
            _n,
            arena._roots,
            arena._status,
            arena._root_local,
            arena._un_nodes,
            arena._un_edges,
            arena._node_indptr,
            arena._node_globals,
            arena._edge_indptr,
            arena._edge_src,
            arena._edge_dst,
            arena._edge_boost,
            arena._crit_indptr,
            arena._crit_nodes,
        ) = payload
        return arena

    @classmethod
    def from_payloads(cls, payloads: Sequence[tuple]) -> "PRRArena":
        """Merge many payloads with one concatenation per array.

        Linear in total size — the merge path for chunked parallel
        generation (repeated :meth:`extend_arena` would re-copy the
        accumulated arrays once per chunk).
        """
        if not payloads:
            raise ValueError("need at least one payload")
        arena = cls(payloads[0][0])
        for p in payloads:
            if p[0] != arena.n:
                raise ValueError("arena node counts differ")
        # Payload layout: see payload().  Fields 1-5 are per-graph scalar
        # arrays, 6/8/12 are indptrs (offset before concatenation), the
        # rest are flat value arrays.
        for field_idx, attr in (
            (1, "_roots"), (2, "_status"), (3, "_root_local"),
            (4, "_un_nodes"), (5, "_un_edges"),
            (7, "_node_globals"), (9, "_edge_src"), (10, "_edge_dst"),
            (11, "_edge_boost"), (13, "_crit_nodes"),
        ):
            setattr(arena, attr, np.concatenate([p[field_idx] for p in payloads]))
        for field_idx, attr in (
            (6, "_node_indptr"), (8, "_edge_indptr"), (12, "_crit_indptr"),
        ):
            parts = [np.zeros(1, dtype=np.int64)]
            offset = 0
            for p in payloads:
                indptr = p[field_idx]
                parts.append(indptr[1:] + offset)
                offset += int(indptr[-1])
            setattr(arena, attr, np.concatenate(parts))
        return arena


def sample_prr_arena(
    graph: DiGraph,
    seeds: AbstractSet[int],
    k: int,
    rng: np.random.Generator,
    count: int,
    roots: Sequence[int] | None = None,
    arena: Optional[PRRArena] = None,
) -> PRRArena:
    """Sample ``count`` PRR-graphs straight into a :class:`PRRArena`.

    Consumes the RNG exactly like :func:`sample_prr_batch` (the two are
    interchangeable sample-for-sample); the arena path skips every
    per-graph Python object.
    """
    engine = SamplingEngine.for_graph(graph)
    mask = engine.seeds_mask(seeds)
    if arena is None:
        arena = PRRArena(graph.n)
    for i in range(count):
        r = int(rng.integers(graph.n)) if roots is None else int(roots[i])
        if mask[r]:
            arena.add_activated(r)
            continue
        arena.add_phase1(engine.prr_phase1(mask, r, k, rng=rng), k)
    return arena
