"""PRR-Boost and PRR-Boost-LB (Algorithm 2 and Section V-C).

``prr_boost`` follows Algorithm 2:

1. run the IMM sampling phase against the *lower-bound* objective ``μ``
   (each sampled "set" is the critical-node set of a PRR-graph),
2. ``B_μ`` ← greedy max-coverage over critical sets,
3. ``B_Δ`` ← greedy selection maximizing ``Δ̂`` over the full PRR-graphs,
4. return whichever of the two has the larger estimated boost
   (the Sandwich Approximation applied on its lower-bound side).

``prr_boost_lb`` skips steps 3-4 and only ever materializes critical sets,
which makes generation cheaper and memory much smaller — the trade-off
studied in Figures 6/8/11.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Set

import numpy as np

from ..engine import SamplingEngine
from ..graphs.digraph import DiGraph
from ..im.greedy import greedy_max_coverage
from ..im.imm import imm_sampling
from .estimator import (
    CollectionStats,
    collection_stats,
    estimate_delta,
    estimate_mu,
    greedy_delta_selection,
)
from .prr import PRRGraph, sample_prr_batch

__all__ = ["BoostResult", "prr_boost", "prr_boost_lb", "PRRSampler", "CriticalSetSampler"]


class PRRSampler:
    """Sampler adapter: draws full PRR-graphs, exposes their critical sets.

    ``imm_sampling`` consumes the critical sets (that is the ``μ``
    maximization); the full graphs accumulate in :attr:`graphs` so the
    ``Δ̂`` arm and the final comparison can reuse the same samples, exactly
    as Algorithm 2 reuses ``R``.
    """

    def __init__(self, graph: DiGraph, seeds: Set[int], k: int) -> None:
        self.graph = graph
        self.seeds = frozenset(seeds)
        self.k = k
        self.n = graph.n
        self.graphs: List[PRRGraph] = []

    def sample(self, rng: np.random.Generator) -> FrozenSet[int]:
        prr = sample_prr_batch(self.graph, self.seeds, self.k, rng, 1)[0]
        self.graphs.append(prr)
        return prr.critical if prr.is_boostable else frozenset()

    def sample_batch(
        self, rng: np.random.Generator, count: int
    ) -> List[FrozenSet[int]]:
        """``count`` PRR-graphs in one batch; returns their critical sets
        (the ``μ`` payload) while the full graphs accumulate."""
        batch = sample_prr_batch(self.graph, self.seeds, self.k, rng, count)
        self.graphs.extend(batch)
        return [g.critical if g.is_boostable else frozenset() for g in batch]


class CriticalSetSampler:
    """Sampler that generates only critical sets (PRR-Boost-LB fast path)."""

    def __init__(self, graph: DiGraph, seeds: Set[int]) -> None:
        self.graph = graph
        self.seeds = frozenset(seeds)
        self.n = graph.n
        self.explored_edges = 0
        self.statuses = {"activated": 0, "hopeless": 0, "boostable": 0}
        self._engine = SamplingEngine.for_graph(graph)

    def sample(self, rng: np.random.Generator) -> FrozenSet[int]:
        status, critical, explored = self._engine.critical_set(self.seeds, rng)
        self.explored_edges += explored
        self.statuses[status] += 1
        return critical

    def sample_batch(
        self, rng: np.random.Generator, count: int
    ) -> List[FrozenSet[int]]:
        """``count`` critical sets in one engine batch."""
        out = []
        for status, critical, explored in self._engine.sample_critical_batch(
            self.seeds, rng, count
        ):
            self.explored_edges += explored
            self.statuses[status] += 1
            out.append(critical)
        return out


@dataclass
class BoostResult:
    """Outcome of PRR-Boost / PRR-Boost-LB.

    ``estimated_boost`` is the internal ``Δ̂`` (or ``μ̂`` for the LB variant)
    of the returned set — callers wanting unbiased numbers re-evaluate with
    Monte Carlo (:func:`repro.diffusion.estimate_boost`).
    """

    boost_set: List[int]
    estimated_boost: float
    mu_set: List[int] = field(default_factory=list)
    mu_estimate: float = 0.0
    delta_set: List[int] = field(default_factory=list)
    delta_estimate: float = 0.0
    num_samples: int = 0
    stats: Optional[CollectionStats] = None
    elapsed_seconds: float = 0.0


def prr_boost(
    graph: DiGraph,
    seeds: Sequence[int] | Set[int],
    k: int,
    rng: np.random.Generator,
    epsilon: float = 0.5,
    ell: float = 1.0,
    max_samples: int = 200_000,
) -> BoostResult:
    """Run PRR-Boost (Algorithm 2) and return the sandwich solution.

    Parameters
    ----------
    graph:
        Influence graph with base and boosted probabilities.
    seeds:
        The fixed seed set ``S``.
    k:
        Number of nodes to boost.
    epsilon, ell:
        Accuracy/confidence parameters; the paper's experiments use
        ``ε = 0.5``, ``ℓ = 1``.
    max_samples:
        Safety cap on the number of PRR-graphs (keeps worst-case
        parameterizations laptop-friendly).
    """
    start = time.perf_counter()
    seed_set = set(int(s) for s in seeds)
    if not seed_set:
        raise ValueError("seed set must be non-empty")
    if k <= 0:
        raise ValueError("k must be positive")
    candidates = {v for v in range(graph.n) if v not in seed_set}
    k = min(k, max(len(candidates), 1))  # budgets beyond the pool are moot

    ell_prime = ell * (1.0 + np.log(3.0) / np.log(max(graph.n, 2)))
    sampler = PRRSampler(graph, seed_set, k)
    critical_sets = imm_sampling(
        sampler, k, epsilon, ell_prime, rng, candidates=candidates, max_samples=max_samples
    )
    prr_graphs = sampler.graphs

    mu_set, mu_covered = greedy_max_coverage(critical_sets, k, candidates)
    mu_estimate = graph.n * mu_covered / len(critical_sets)

    delta_set, delta_estimate = greedy_delta_selection(
        prr_graphs, graph.n, k, candidates
    )

    mu_delta = estimate_delta(prr_graphs, graph.n, set(mu_set))
    if mu_delta >= delta_estimate:
        chosen, value = mu_set, mu_delta
    else:
        chosen, value = delta_set, delta_estimate

    return BoostResult(
        boost_set=sorted(chosen),
        estimated_boost=value,
        mu_set=sorted(mu_set),
        mu_estimate=mu_estimate,
        delta_set=sorted(delta_set),
        delta_estimate=delta_estimate,
        num_samples=len(prr_graphs),
        stats=collection_stats(prr_graphs),
        elapsed_seconds=time.perf_counter() - start,
    )


def prr_boost_lb(
    graph: DiGraph,
    seeds: Sequence[int] | Set[int],
    k: int,
    rng: np.random.Generator,
    epsilon: float = 0.5,
    ell: float = 1.0,
    max_samples: int = 200_000,
) -> BoostResult:
    """Run PRR-Boost-LB: maximize only the lower bound ``μ``.

    Same approximation factor as PRR-Boost but faster generation and far
    lower memory, because each sample is just a (typically tiny) critical
    node set.
    """
    start = time.perf_counter()
    seed_set = set(int(s) for s in seeds)
    if not seed_set:
        raise ValueError("seed set must be non-empty")
    if k <= 0:
        raise ValueError("k must be positive")
    candidates = {v for v in range(graph.n) if v not in seed_set}
    k = min(k, max(len(candidates), 1))  # budgets beyond the pool are moot

    ell_prime = ell * (1.0 + np.log(3.0) / np.log(max(graph.n, 2)))
    sampler = CriticalSetSampler(graph, seed_set)
    critical_sets = imm_sampling(
        sampler, k, epsilon, ell_prime, rng, candidates=candidates, max_samples=max_samples
    )
    mu_set, mu_covered = greedy_max_coverage(critical_sets, k, candidates)
    mu_estimate = graph.n * mu_covered / len(critical_sets)

    return BoostResult(
        boost_set=sorted(mu_set),
        estimated_boost=mu_estimate,
        mu_set=sorted(mu_set),
        mu_estimate=mu_estimate,
        num_samples=len(critical_sets),
        elapsed_seconds=time.perf_counter() - start,
    )
