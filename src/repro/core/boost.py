"""PRR-Boost and PRR-Boost-LB (Algorithm 2 and Section V-C).

``prr_boost`` follows Algorithm 2:

1. run the IMM sampling phase against the *lower-bound* objective ``μ``
   (each sampled "set" is the critical-node set of a PRR-graph),
2. ``B_μ`` ← greedy max-coverage over critical sets,
3. ``B_Δ`` ← greedy selection maximizing ``Δ̂`` over the full PRR-graphs,
4. return whichever of the two has the larger estimated boost
   (the Sandwich Approximation applied on its lower-bound side).

``prr_boost_lb`` skips steps 3-4 and only ever materializes critical sets,
which makes generation cheaper and memory much smaller — the trade-off
studied in Figures 6/8/11.

Both run on the flat selection subsystem end to end: sampled PRR-graphs
accumulate in a :class:`~repro.core.prr.PRRArena` (never as Python object
lists), critical sets stream into the IMM phase's
:class:`~repro.engine.coverage.CoverageIndex`, and steps 2-4 are the
vectorized kernels of :mod:`repro.core.estimator`.  ``μ̂`` and ``Δ̂`` of
both arms come from :func:`estimate_mu`/:func:`estimate_delta` over the
same collection — one source of truth for the sandwich comparison.
``selection="legacy"`` reruns the pre-arena object path (Python sample
lists, dict/heap greedy, per-graph loops) with identical RNG consumption
— the seeded-equivalence oracle and the benchmark baseline of
``benchmarks/bench_select.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Set

import numpy as np

from ..engine import SamplingEngine
from ..engine.coverage import CoverageIndex, csr_to_frozensets
from ..graphs.digraph import DiGraph
from ..im.greedy import legacy_greedy_max_coverage
from ..im.imm import imm_sampling
from .estimator import (
    CollectionStats,
    collection_stats,
    estimate_delta,
    estimate_mu,
    greedy_delta_selection,
    legacy_estimate_delta,
    legacy_greedy_delta_selection,
)
from .parallel import PARALLEL_MIN_SAMPLES, resolve_sampler_workers
from .prr import PRRArena, PRRGraph, sample_prr_lanes

__all__ = [
    "BoostResult",
    "prr_boost",
    "prr_boost_core",
    "prr_boost_lb",
    "prr_boost_lb_core",
    "PRRSampler",
    "CriticalSetSampler",
]


class PRRSampler:
    """Sampler adapter: draws full PRR-graphs, exposes their critical sets.

    ``imm_sampling`` consumes the critical sets (that is the ``μ``
    maximization); the full graphs accumulate in :attr:`arena` so the
    ``Δ̂`` arm and the final comparison can reuse the same samples, exactly
    as Algorithm 2 reuses ``R``.  :attr:`graphs` exposes the arena's lazy
    :class:`PRRGraph` views for object-based callers (e.g. the sandwich
    ratio experiments).

    Sampling runs on the lane kernels (:func:`sample_prr_lanes`); with
    ``workers > 1`` large extensions dispatch chunk jobs to the
    shared-memory runtime (:mod:`repro.core.parallel`) and merge the
    returned arena payloads.  All sampling forms consume the RNG
    identically for a given request size, so the legacy and vectorized
    selection arms stay sample-for-sample in sync either way.
    """

    def __init__(
        self,
        graph: DiGraph,
        seeds: Set[int],
        k: int,
        workers: Optional[int] = None,
        arena: Optional[PRRArena] = None,
    ) -> None:
        self.graph = graph
        self.seeds = frozenset(seeds)
        self.k = k
        self.n = graph.n
        # A warm session may hand in a recycled (cleared) arena so repeated
        # queries skip the allocation; an empty arena behaves identically.
        self.arena = PRRArena(graph.n) if arena is None else arena
        self.workers = resolve_sampler_workers(workers)

    @property
    def graphs(self) -> PRRArena:
        """The sampled collection (a sequence of lazy PRRGraph views)."""
        return self.arena

    def _draw(self, rng: np.random.Generator, count: int) -> int:
        """Grow the arena by ``count`` samples; returns the start index."""
        start = len(self.arena)
        from .parallel import distributed_sampling_active

        # Distributed-bound graphs always take the chunked path (see
        # RRSampler._draw_csr) so host counts cannot change the stream.
        chunked = self.workers > 1 or distributed_sampling_active(self.graph)
        if chunked and count >= PARALLEL_MIN_SAMPLES:
            from .parallel import parallel_prr_payloads

            base = int(rng.integers(np.iinfo(np.int64).max))
            payloads = parallel_prr_payloads(
                self.graph, self.seeds, self.k, count, base, self.workers
            )
            self.arena.extend_arena(PRRArena.from_payloads(payloads))
        else:
            sample_prr_lanes(
                self.graph, self.seeds, self.k, rng, count, arena=self.arena
            )
        return start

    def sample(self, rng: np.random.Generator) -> FrozenSet[int]:
        start = self._draw(rng, 1)
        return self.arena.critical_frozenset(start)

    def sample_batch(
        self, rng: np.random.Generator, count: int
    ) -> List[FrozenSet[int]]:
        """``count`` PRR-graphs in one batch; returns their critical sets
        (the ``μ`` payload) while the full graphs accumulate."""
        start = self._draw(rng, count)
        return [
            self.arena.critical_frozenset(i)
            for i in range(start, len(self.arena))
        ]

    def sample_into(
        self, rng: np.random.Generator, count: int, index: CoverageIndex
    ) -> None:
        """``count`` PRR-graphs; critical sets go straight into ``index``
        as one CSR chunk (no frozensets), graphs into the arena."""
        start = self._draw(rng, count)
        index.extend_csr(*self.arena.critical_csr(start))


class CriticalSetSampler:
    """Sampler that generates only critical sets (PRR-Boost-LB fast path).

    Lane-driven like :class:`PRRSampler`; with ``workers > 1`` large
    extensions run on the shared-memory runtime.  ``statuses`` and
    ``explored_edges`` keep the per-collection diagnostics either way.
    """

    def __init__(
        self,
        graph: DiGraph,
        seeds: Set[int],
        workers: Optional[int] = None,
    ) -> None:
        self.graph = graph
        self.seeds = frozenset(seeds)
        self.n = graph.n
        self.explored_edges = 0
        self.statuses = {"activated": 0, "hopeless": 0, "boostable": 0}
        self.workers = resolve_sampler_workers(workers)
        self._engine = SamplingEngine.for_graph(graph)

    def _draw(self, rng: np.random.Generator, count: int):
        """``count`` samples as ``(status_codes, counts, values)`` CSR,
        with the diagnostics accumulated."""
        from .parallel import distributed_sampling_active

        chunked = self.workers > 1 or distributed_sampling_active(self.graph)
        if chunked and count >= PARALLEL_MIN_SAMPLES:
            from .parallel import parallel_critical_csr

            base = int(rng.integers(np.iinfo(np.int64).max))
            status, counts, values, explored = parallel_critical_csr(
                self.graph, self.seeds, count, base, self.workers
            )
        else:
            status, counts, values, explored = self._engine.critical_lane_csr(
                self.seeds, rng, count
            )
        self.explored_edges += int(explored.sum())
        tallies = np.bincount(status, minlength=3)
        for code, name in enumerate(PRRArena.status_names):
            self.statuses[name] += int(tallies[code])
        return status, counts, values

    def sample(self, rng: np.random.Generator) -> FrozenSet[int]:
        _status, _counts, values = self._draw(rng, 1)
        return frozenset(values.tolist())

    def sample_batch(
        self, rng: np.random.Generator, count: int
    ) -> List[FrozenSet[int]]:
        """``count`` critical sets in one lane batch."""
        _status, counts, values = self._draw(rng, count)
        return csr_to_frozensets(counts, values)

    def sample_into(
        self, rng: np.random.Generator, count: int, index: CoverageIndex
    ) -> None:
        """``count`` critical sets appended as one CSR chunk (no
        frozensets); same RNG consumption as :meth:`sample_batch`."""
        _status, counts, values = self._draw(rng, count)
        index.extend_csr(counts, values.astype(np.int32, copy=False))


@dataclass
class BoostResult:
    """Outcome of PRR-Boost / PRR-Boost-LB.

    ``estimated_boost`` is the internal ``Δ̂`` (or ``μ̂`` for the LB variant)
    of the returned set — callers wanting unbiased numbers re-evaluate with
    Monte Carlo (:func:`repro.diffusion.estimate_boost`).
    """

    boost_set: List[int]
    estimated_boost: float
    mu_set: List[int] = field(default_factory=list)
    mu_estimate: float = 0.0
    delta_set: List[int] = field(default_factory=list)
    delta_estimate: float = 0.0
    num_samples: int = 0
    stats: Optional[CollectionStats] = None
    elapsed_seconds: float = 0.0


def _validate(graph: DiGraph, seeds, k: int, candidates=None):
    seed_set = set(int(s) for s in seeds)
    if not seed_set:
        raise ValueError("seed set must be non-empty")
    if k <= 0:
        raise ValueError("k must be positive")
    if candidates is None:
        candidates = {v for v in range(graph.n) if v not in seed_set}
    k = min(k, max(len(candidates), 1))  # budgets beyond the pool are moot
    return seed_set, candidates, k


def prr_boost_core(
    graph: DiGraph,
    seeds: Sequence[int] | Set[int],
    k: int,
    rng: np.random.Generator,
    epsilon: float = 0.5,
    ell: float = 1.0,
    max_samples: int = 200_000,
    selection: str = "vectorized",
    workers: int | None = None,
    index: Optional[CoverageIndex] = None,
    arena: Optional[PRRArena] = None,
    candidates: Optional[Set[int]] = None,
) -> BoostResult:
    """Run PRR-Boost (Algorithm 2) and return the sandwich solution.

    This is the algorithm body; :func:`prr_boost` is the legacy-shaped
    entry point (a thin wrapper over a throwaway
    :class:`repro.api.Session`), and the session API dispatches here
    directly with its warm scratch state.

    Parameters
    ----------
    graph:
        Influence graph with base and boosted probabilities.
    seeds:
        The fixed seed set ``S``.
    k:
        Number of nodes to boost.
    epsilon, ell:
        Accuracy/confidence parameters; the paper's experiments use
        ``ε = 0.5``, ``ℓ = 1``.
    max_samples:
        Safety cap on the number of PRR-graphs (keeps worst-case
        parameterizations laptop-friendly).
    selection:
        ``"vectorized"`` (default) runs the arena/index kernels;
        ``"legacy"`` reruns the pre-arena object path with identical RNG
        consumption and identical outputs (oracle/benchmark only).
    workers:
        With ``workers > 1`` (and fork available) the sampling phases
        dispatch to the persistent shared-memory runtime of
        :mod:`repro.core.parallel`; selection stays in-process.
    index, arena:
        Optional *empty* scratch containers to run on — a warm
        :class:`repro.api.Session` passes recycled ones so repeated
        queries skip allocation; results are identical either way.
    candidates:
        Optional precomputed candidate pool (all non-seed nodes) — the
        session caches it per seed set.  Content must equal the derived
        pool; it is never mutated.
    """
    start = time.perf_counter()
    seed_set, candidates, k = _validate(graph, seeds, k, candidates)

    ell_prime = ell * (1.0 + np.log(3.0) / np.log(max(graph.n, 2)))
    sampler = PRRSampler(graph, seed_set, k, workers=workers, arena=arena)

    if selection == "legacy":
        critical_sets = imm_sampling(
            sampler, k, epsilon, ell_prime, rng, candidates=candidates,
            max_samples=max_samples, legacy_selection=True,
        )
        prr_graphs: Sequence[PRRGraph] = list(sampler.arena)
        mu_set, mu_covered = legacy_greedy_max_coverage(
            critical_sets, k, candidates
        )
        mu_estimate = graph.n * mu_covered / len(critical_sets)
        delta_set, delta_estimate = legacy_greedy_delta_selection(
            prr_graphs, graph.n, k, candidates
        )
        mu_delta = legacy_estimate_delta(prr_graphs, graph.n, set(mu_set))
        num_samples = len(prr_graphs)
        stats = collection_stats(prr_graphs)
    else:
        if index is None:
            index = CoverageIndex(graph.n)
        imm_sampling(
            sampler, k, epsilon, ell_prime, rng, candidates=candidates,
            max_samples=max_samples, index=index,
        )
        arena = sampler.arena
        mu_set, _mu_covered = index.greedy(k, candidates)
        # One source of truth for both arms: μ̂ and Δ̂ of either candidate
        # set come from the vectorized estimators over the same arena.
        mu_estimate = estimate_mu(arena, graph.n, set(mu_set))
        delta_set, delta_estimate = greedy_delta_selection(
            arena, graph.n, k, candidates
        )
        mu_delta = estimate_delta(arena, graph.n, set(mu_set))
        num_samples = len(arena)
        stats = collection_stats(arena)

    if mu_delta >= delta_estimate:
        chosen, value = mu_set, mu_delta
    else:
        chosen, value = delta_set, delta_estimate

    return BoostResult(
        boost_set=sorted(chosen),
        estimated_boost=value,
        mu_set=sorted(mu_set),
        mu_estimate=mu_estimate,
        delta_set=sorted(delta_set),
        delta_estimate=delta_estimate,
        num_samples=num_samples,
        stats=stats,
        elapsed_seconds=time.perf_counter() - start,
    )


def prr_boost_lb_core(
    graph: DiGraph,
    seeds: Sequence[int] | Set[int],
    k: int,
    rng: np.random.Generator,
    epsilon: float = 0.5,
    ell: float = 1.0,
    max_samples: int = 200_000,
    selection: str = "vectorized",
    workers: int | None = None,
    index: Optional[CoverageIndex] = None,
    candidates: Optional[Set[int]] = None,
) -> BoostResult:
    """Run PRR-Boost-LB: maximize only the lower bound ``μ``.

    Same approximation factor as PRR-Boost but faster generation and far
    lower memory, because each sample is just a (typically tiny) critical
    node set.  ``workers > 1`` dispatches sampling to the shared-memory
    runtime like :func:`prr_boost`; ``index``/``candidates`` are the
    optional warm-session scratch (see :func:`prr_boost_core`).
    :func:`prr_boost_lb` is the legacy-shaped wrapper.
    """
    start = time.perf_counter()
    seed_set, candidates, k = _validate(graph, seeds, k, candidates)

    ell_prime = ell * (1.0 + np.log(3.0) / np.log(max(graph.n, 2)))
    sampler = CriticalSetSampler(graph, seed_set, workers=workers)
    if selection == "legacy":
        critical_sets = imm_sampling(
            sampler, k, epsilon, ell_prime, rng, candidates=candidates,
            max_samples=max_samples, legacy_selection=True,
        )
        mu_set, mu_covered = legacy_greedy_max_coverage(
            critical_sets, k, candidates
        )
        num_samples = len(critical_sets)
    else:
        if index is None:
            index = CoverageIndex(graph.n)
        imm_sampling(
            sampler, k, epsilon, ell_prime, rng, candidates=candidates,
            max_samples=max_samples, index=index,
        )
        mu_set, mu_covered = index.greedy(k, candidates)
        num_samples = index.num_sets
    mu_estimate = graph.n * mu_covered / num_samples

    return BoostResult(
        boost_set=sorted(mu_set),
        estimated_boost=mu_estimate,
        mu_set=sorted(mu_set),
        mu_estimate=mu_estimate,
        num_samples=num_samples,
        elapsed_seconds=time.perf_counter() - start,
    )


def _run_boost_query(
    algorithm: str,
    graph: DiGraph,
    seeds: Sequence[int] | Set[int],
    k: int,
    rng: np.random.Generator,
    epsilon: float,
    ell: float,
    max_samples: int,
    selection: str,
    workers: int | None,
) -> BoostResult:
    """Route a legacy free-function call through a throwaway session.

    The session API is the single dispatch surface now; the legacy entry
    points below build the equivalent typed query and run it on a
    default (throwaway, shared-runtime) :class:`repro.api.Session`, so
    both paths are one code path and stay bit-for-bit identical.
    """
    from ..api import BoostQuery, SamplingBudget, Session

    query = BoostQuery(
        algorithm=algorithm,
        seeds=tuple(int(s) for s in seeds),
        k=k,
        budget=SamplingBudget(
            max_samples=max_samples, epsilon=epsilon, ell=ell, workers=workers
        ),
        params={"selection": selection},
    )
    with Session(graph, manage_runtime=False) as session:
        return session.run(query, rng=rng).raw


def prr_boost(
    graph: DiGraph,
    seeds: Sequence[int] | Set[int],
    k: int,
    rng: np.random.Generator,
    epsilon: float = 0.5,
    ell: float = 1.0,
    max_samples: int = 200_000,
    selection: str = "vectorized",
    workers: int | None = None,
) -> BoostResult:
    """Run PRR-Boost (Algorithm 2) and return the sandwich solution.

    Thin wrapper over a throwaway :class:`repro.api.Session` — see
    :func:`prr_boost_core` for the parameters and the algorithm itself.
    Long-lived callers should hold a session and submit
    :class:`~repro.api.BoostQuery` objects instead.
    """
    return _run_boost_query(
        "prr_boost", graph, seeds, k, rng,
        epsilon, ell, max_samples, selection, workers,
    )


def prr_boost_lb(
    graph: DiGraph,
    seeds: Sequence[int] | Set[int],
    k: int,
    rng: np.random.Generator,
    epsilon: float = 0.5,
    ell: float = 1.0,
    max_samples: int = 200_000,
    selection: str = "vectorized",
    workers: int | None = None,
) -> BoostResult:
    """Run PRR-Boost-LB (lower bound only).

    Thin wrapper over a throwaway :class:`repro.api.Session` — see
    :func:`prr_boost_lb_core`.
    """
    return _run_boost_query(
        "prr_boost_lb", graph, seeds, k, rng,
        epsilon, ell, max_samples, selection, workers,
    )
