"""Estimation of the boost of influence over collections of PRR-graphs.

Implements the two estimators of Section IV

* ``Δ̂_R(B) = (n/|R|) · Σ_R f_R(B)``   (Equation 2),
* ``μ̂_R(B) = (n/|R|) · Σ_R f⁻_R(B)``  (submodular lower bound),

and the greedy node-selection over ``Δ̂`` used by Line 4 of Algorithm 2.
Non-boostable PRR-graphs contribute 0 to both sums but *do* count in ``|R|``
— the estimators divide by the total number of sampled roots.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, List, Sequence, Set, Tuple

import numpy as np

from .prr import PRRGraph

__all__ = [
    "estimate_delta",
    "estimate_mu",
    "greedy_delta_selection",
    "CollectionStats",
    "collection_stats",
]


def estimate_delta(
    prr_graphs: Sequence[PRRGraph], n: int, boost: AbstractSet[int]
) -> float:
    """``Δ̂_R(B)`` — unbiased estimate of the boost of influence ``Δ_S(B)``."""
    if not prr_graphs:
        return 0.0
    covered = sum(1 for g in prr_graphs if g.f(boost))
    return n * covered / len(prr_graphs)


def estimate_mu(
    prr_graphs: Sequence[PRRGraph], n: int, boost: AbstractSet[int]
) -> float:
    """``μ̂_R(B)`` — estimate of the submodular lower bound ``μ(B)``."""
    if not prr_graphs:
        return 0.0
    covered = sum(1 for g in prr_graphs if g.f_lower(boost))
    return n * covered / len(prr_graphs)


FrozenOptions = frozenset


def greedy_delta_selection(
    prr_graphs: Sequence[PRRGraph],
    n: int,
    k: int,
    candidates: Set[int] | None = None,
) -> Tuple[List[int], float]:
    """Greedily build ``B`` maximizing ``Δ̂_R(B)`` (NodeSelection, Line 4).

    Each round recomputes, for every still-inactive boostable PRR-graph, the
    set ``A_R(B)`` of single nodes whose addition would activate the root
    (two linear traversals per graph — the incremental update the paper's
    complexity analysis relies on), tallies the counts into a dense array,
    and takes the argmax.

    Returns the chosen boost set and its ``Δ̂`` estimate.
    """
    if k <= 0 or not prr_graphs:
        return [], 0.0
    boost: set[int] = set()
    active = [False] * len(prr_graphs)
    activated_count = 0
    allowed = np.ones(n, dtype=bool)
    if candidates is not None:
        allowed[:] = False
        allowed[list(candidates)] = True
    # Cache each graph's current activation options.
    options: List[FrozenOptions] = [None] * len(prr_graphs)  # type: ignore[assignment]

    for _round in range(k):
        counts = np.zeros(n, dtype=np.int64)
        for idx, g in enumerate(prr_graphs):
            if active[idx] or not g.is_boostable:
                continue
            acts = g.activating_nodes(boost)
            options[idx] = acts
            if acts:
                counts[list(acts)] += 1
        counts[~allowed] = 0
        if not counts.any():
            # Supermodular stall: no single node finishes any root.  Expand
            # reachability instead — boost the node that unlocks the most
            # frontier edges, so multi-step chains become completable.
            for idx, g in enumerate(prr_graphs):
                if active[idx] or not g.is_boostable:
                    continue
                frontier = g.frontier_nodes(boost)
                if frontier:
                    counts[list(frontier)] += 1
            counts[~allowed] = 0
            options = [None] * len(prr_graphs)  # type: ignore[assignment]
        if not counts.any():
            break
        # argmax breaks ties toward the smallest node id.
        best = int(np.argmax(counts))
        boost.add(best)
        for idx, g in enumerate(prr_graphs):
            if active[idx] or not g.is_boostable:
                continue
            if options[idx] is not None and best in options[idx]:
                active[idx] = True
                activated_count += 1
    estimate = n * activated_count / len(prr_graphs)
    return sorted(boost), estimate


class CollectionStats:
    """Aggregate statistics of a PRR-graph collection (Tables 2 and 3)."""

    __slots__ = (
        "total",
        "activated",
        "hopeless",
        "boostable",
        "uncompressed_edges",
        "compressed_edges",
        "critical_nodes",
        "stored_bytes",
    )

    def __init__(self) -> None:
        self.total = 0
        self.activated = 0
        self.hopeless = 0
        self.boostable = 0
        self.uncompressed_edges = 0
        self.compressed_edges = 0
        self.critical_nodes = 0
        self.stored_bytes = 0

    def add(self, graph: PRRGraph) -> None:
        self.total += 1
        if graph.status == "activated":
            self.activated += 1
        elif graph.status == "hopeless":
            self.hopeless += 1
        else:
            self.boostable += 1
            self.uncompressed_edges += graph.uncompressed_edges
            self.compressed_edges += graph.num_edges
            self.critical_nodes += len(graph.critical)
            self.stored_bytes += graph.estimated_bytes

    @property
    def avg_uncompressed_edges(self) -> float:
        """Mean edges explored per boostable PRR-graph before compression."""
        return self.uncompressed_edges / self.boostable if self.boostable else 0.0

    @property
    def avg_compressed_edges(self) -> float:
        """Mean edges per boostable PRR-graph after compression."""
        return self.compressed_edges / self.boostable if self.boostable else 0.0

    @property
    def compression_ratio(self) -> float:
        """Uncompressed-to-compressed edge ratio (the Table 2/3 headline)."""
        if self.compressed_edges == 0:
            return 0.0
        return self.uncompressed_edges / self.compressed_edges

    @property
    def avg_critical_nodes(self) -> float:
        return self.critical_nodes / self.boostable if self.boostable else 0.0

    @property
    def memory_mb(self) -> float:
        """Estimated megabytes holding all boostable PRR-graphs.

        The analogue of the parenthesised numbers in the paper's Tables 2/3
        (additional memory for boostable PRR-graphs).
        """
        return self.stored_bytes / (1024.0 * 1024.0)


def collection_stats(prr_graphs: Iterable[PRRGraph]) -> CollectionStats:
    """Compute :class:`CollectionStats` over ``prr_graphs``."""
    stats = CollectionStats()
    for g in prr_graphs:
        stats.add(g)
    return stats
