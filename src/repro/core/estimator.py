"""Estimation of the boost of influence over collections of PRR-graphs.

Implements the two estimators of Section IV

* ``Δ̂_R(B) = (n/|R|) · Σ_R f_R(B)``   (Equation 2),
* ``μ̂_R(B) = (n/|R|) · Σ_R f⁻_R(B)``  (submodular lower bound),

and the greedy node-selection over ``Δ̂`` used by Line 4 of Algorithm 2.
Non-boostable PRR-graphs contribute 0 to both sums but *do* count in ``|R|``
— the estimators divide by the total number of sampled roots.

Two implementations coexist:

* the **arena kernels** — collections held in a :class:`~repro.core.prr.PRRArena`
  are evaluated batch-vectorized: one fixed-point reachability pass over the
  concatenated edge arrays of *all* graphs per greedy round (graphs cannot
  interfere because their arena node ranges are disjoint), with activation
  counts tallied by ``(graph, node)``-keyed bincounts.  Sequences of
  :class:`PRRGraph` objects are converted to an arena once up front.
* the **legacy per-graph loops** (``legacy_estimate_delta`` / ``legacy_estimate_mu``
  / ``legacy_greedy_delta_selection``) — kept verbatim as seeded-equivalence
  oracles and benchmark baselines, the same pattern as
  :mod:`repro.engine.reference`.  ``tests/test_selection.py`` pins the arena
  kernels to their exact outputs (identical chosen sets, tie-breaks and
  estimates).
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, List, Sequence, Set, Tuple, Union

import numpy as np

from ..engine.traversal import grow_reachable
from .prr import PRRArena, PRRGraph

__all__ = [
    "estimate_delta",
    "estimate_mu",
    "greedy_delta_selection",
    "legacy_estimate_delta",
    "legacy_estimate_mu",
    "legacy_greedy_delta_selection",
    "CollectionStats",
    "collection_stats",
]

Collection = Union[PRRArena, Sequence[PRRGraph]]


def _as_arena(prr_graphs: Collection, n: int) -> PRRArena:
    if isinstance(prr_graphs, PRRArena):
        return prr_graphs
    return PRRArena.from_graphs(n, prr_graphs)


def _boost_mask(n: int, boost: AbstractSet[int]) -> np.ndarray:
    mask = np.zeros(n, dtype=bool)
    ids = [int(v) for v in boost if 0 <= int(v) < n]
    if ids:
        mask[ids] = True
    return mask


def _forward_reached(arena: PRRArena, boosted: np.ndarray) -> np.ndarray:
    """Super-seed forward reachability across all boostable graphs at once."""
    flat = arena.flat()
    reached = np.zeros(flat["total_nodes"], dtype=bool)
    reached[flat["node_base"][flat["boostable"]]] = True
    traversable = ~arena.edge_boost | boosted[flat["edge_head_global"]]
    grow_reachable(flat["edge_src"], flat["edge_dst"], reached, traversable)
    return reached


def estimate_delta(
    prr_graphs: Collection, n: int, boost: AbstractSet[int]
) -> float:
    """``Δ̂_R(B)`` — unbiased estimate of the boost of influence ``Δ_S(B)``.

    :class:`PRRArena` collections are evaluated with one vectorized
    reachability pass over all graphs; object sequences fall back to the
    per-graph loop (converting for a single evaluation would cost more).
    """
    if not isinstance(prr_graphs, PRRArena):
        return legacy_estimate_delta(prr_graphs, n, boost)
    if len(prr_graphs) == 0:
        return 0.0
    flat = prr_graphs.flat()
    reached = _forward_reached(prr_graphs, _boost_mask(n, boost))
    roots = flat["root_arena"][flat["boostable"]]
    covered = int(np.count_nonzero(reached[roots]))
    return n * covered / len(prr_graphs)


def estimate_mu(
    prr_graphs: Collection, n: int, boost: AbstractSet[int]
) -> float:
    """``μ̂_R(B)`` — estimate of the submodular lower bound ``μ(B)``."""
    if not isinstance(prr_graphs, PRRArena):
        return legacy_estimate_mu(prr_graphs, n, boost)
    if len(prr_graphs) == 0:
        return 0.0
    boosted = _boost_mask(n, boost)
    hit = boosted[prr_graphs.crit_nodes]
    covered = int(np.unique(prr_graphs.flat()["crit_gid"][hit]).size)
    return n * covered / len(prr_graphs)


def legacy_estimate_delta(
    prr_graphs: Sequence[PRRGraph], n: int, boost: AbstractSet[int]
) -> float:
    """Per-graph ``Δ̂`` loop — the pre-arena oracle."""
    if not prr_graphs:
        return 0.0
    covered = sum(1 for g in prr_graphs if g.f(boost))
    return n * covered / len(prr_graphs)


def legacy_estimate_mu(
    prr_graphs: Sequence[PRRGraph], n: int, boost: AbstractSet[int]
) -> float:
    """Per-graph ``μ̂`` loop — the pre-arena oracle."""
    if not prr_graphs:
        return 0.0
    covered = sum(1 for g in prr_graphs if g.f_lower(boost))
    return n * covered / len(prr_graphs)


def _distinct_graph_counts(
    gid: np.ndarray, head: np.ndarray, mask: np.ndarray, n: int
) -> np.ndarray:
    """``counts[v]`` = number of distinct graphs with a masked edge headed
    at global node ``v`` (several parallel crossings in one graph count
    once, matching the per-graph set semantics of the legacy loop)."""
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        return np.zeros(n, dtype=np.int64)
    keys = np.unique(gid[idx] * n + head[idx])
    return np.bincount(keys % n, minlength=n)


def greedy_delta_selection(
    prr_graphs: Collection,
    n: int,
    k: int,
    candidates: Set[int] | None = None,
) -> Tuple[List[int], float]:
    """Greedily build ``B`` maximizing ``Δ̂_R(B)`` (NodeSelection, Line 4).

    Each round evaluates, for every still-inactive boostable PRR-graph, the
    set ``A_R(B)`` of single nodes whose addition would activate the root —
    but across *all* graphs at once: forward (super-seed) and backward
    (root) reachability are two shared fixed-point passes over the arena's
    concatenated edge arrays, grown incrementally as ``B`` gains nodes
    (reachability is monotone in ``B``), and a live-upon-boost edge
    crossing from the forward into the backward region marks its head as
    activating for its graph.  When no single node activates any root
    (supermodular stall) the same machinery counts *frontier* edges
    (forward region → anywhere unreached) instead, so multi-step chains
    stay completable — identical to the legacy per-graph logic.

    Returns the chosen boost set and its ``Δ̂`` estimate; output is pinned
    to :func:`legacy_greedy_delta_selection` (same picks, same
    smallest-id tie-breaks, same estimate).
    """
    arena = _as_arena(prr_graphs, n)
    total = len(arena)
    if k <= 0 or total == 0:
        return [], 0.0
    flat = arena.flat()
    src = flat["edge_src"]
    dst = flat["edge_dst"]
    head = flat["edge_head_global"]
    gid = flat["edge_gid"]
    eboost = arena.edge_boost
    root_arena = flat["root_arena"]
    boostable = flat["boostable"]
    roots_pos = root_arena[boostable]

    fwd = np.zeros(flat["total_nodes"], dtype=bool)
    fwd[flat["node_base"][boostable]] = True
    bwd = np.zeros(flat["total_nodes"], dtype=bool)
    bwd[roots_pos] = True
    boosted = np.zeros(n, dtype=bool)
    allowed = None
    if candidates is not None:
        allowed = np.zeros(n, dtype=bool)
        allowed[[int(c) for c in candidates if 0 <= int(c) < n]] = True

    traversable = ~eboost
    grow_reachable(src, dst, fwd, traversable)
    grow_reachable(dst, src, bwd, traversable)

    chosen: List[int] = []
    for _round in range(k):
        # Edges of graphs whose root is already activated drop out; the
        # remaining live-upon-boost edges with unboosted heads are the
        # activation candidates.
        eligible = eboost & ~boosted[head] & fwd[src] & ~fwd[root_arena[gid]]
        counts = _distinct_graph_counts(gid, head, eligible & bwd[dst], n)
        if allowed is not None:
            counts[~allowed] = 0
        if not counts.any():
            # Supermodular stall: no single node finishes any root.  Expand
            # reachability instead — boost the node that unlocks the most
            # frontier edges, so multi-step chains become completable.
            counts = _distinct_graph_counts(gid, head, eligible & ~fwd[dst], n)
            if allowed is not None:
                counts[~allowed] = 0
        if not counts.any():
            break
        # argmax breaks ties toward the smallest node id.
        best = int(np.argmax(counts))
        chosen.append(best)
        boosted[best] = True
        traversable |= eboost & (head == best)
        grow_reachable(src, dst, fwd, traversable)
        grow_reachable(dst, src, bwd, traversable)

    activated = int(np.count_nonzero(fwd[roots_pos]))
    return sorted(chosen), n * activated / total


FrozenOptions = frozenset


def legacy_greedy_delta_selection(
    prr_graphs: Sequence[PRRGraph],
    n: int,
    k: int,
    candidates: Set[int] | None = None,
) -> Tuple[List[int], float]:
    """Per-graph greedy ``Δ̂`` selection — the pre-arena oracle.

    Each round recomputes, for every still-inactive boostable PRR-graph, the
    set ``A_R(B)`` of single nodes whose addition would activate the root
    (two linear traversals per graph), tallies the counts into a dense
    array, and takes the argmax.
    """
    if k <= 0 or not prr_graphs:
        return [], 0.0
    boost: set[int] = set()
    active = [False] * len(prr_graphs)
    activated_count = 0
    allowed = np.ones(n, dtype=bool)
    if candidates is not None:
        allowed[:] = False
        allowed[list(candidates)] = True
    # Cache each graph's current activation options.
    options: List[FrozenOptions] = [None] * len(prr_graphs)  # type: ignore[assignment]

    for _round in range(k):
        counts = np.zeros(n, dtype=np.int64)
        for idx, g in enumerate(prr_graphs):
            if active[idx] or not g.is_boostable:
                continue
            acts = g.activating_nodes(boost)
            options[idx] = acts
            if acts:
                counts[list(acts)] += 1
        counts[~allowed] = 0
        if not counts.any():
            # Supermodular stall: see greedy_delta_selection.
            for idx, g in enumerate(prr_graphs):
                if active[idx] or not g.is_boostable:
                    continue
                frontier = g.frontier_nodes(boost)
                if frontier:
                    counts[list(frontier)] += 1
            counts[~allowed] = 0
            options = [None] * len(prr_graphs)  # type: ignore[assignment]
        if not counts.any():
            break
        # argmax breaks ties toward the smallest node id.
        best = int(np.argmax(counts))
        boost.add(best)
        for idx, g in enumerate(prr_graphs):
            if active[idx] or not g.is_boostable:
                continue
            if options[idx] is not None and best in options[idx]:
                active[idx] = True
                activated_count += 1
    estimate = n * activated_count / len(prr_graphs)
    return sorted(boost), estimate


class CollectionStats:
    """Aggregate statistics of a PRR-graph collection (Tables 2 and 3)."""

    __slots__ = (
        "total",
        "activated",
        "hopeless",
        "boostable",
        "uncompressed_edges",
        "compressed_edges",
        "critical_nodes",
        "stored_bytes",
    )

    def __init__(self) -> None:
        self.total = 0
        self.activated = 0
        self.hopeless = 0
        self.boostable = 0
        self.uncompressed_edges = 0
        self.compressed_edges = 0
        self.critical_nodes = 0
        self.stored_bytes = 0

    def add(self, graph: PRRGraph) -> None:
        self.total += 1
        if graph.status == "activated":
            self.activated += 1
        elif graph.status == "hopeless":
            self.hopeless += 1
        else:
            self.boostable += 1
            self.uncompressed_edges += graph.uncompressed_edges
            self.compressed_edges += graph.num_edges
            self.critical_nodes += len(graph.critical)
            self.stored_bytes += graph.estimated_bytes

    @property
    def avg_uncompressed_edges(self) -> float:
        """Mean edges explored per boostable PRR-graph before compression."""
        return self.uncompressed_edges / self.boostable if self.boostable else 0.0

    @property
    def avg_compressed_edges(self) -> float:
        """Mean edges per boostable PRR-graph after compression."""
        return self.compressed_edges / self.boostable if self.boostable else 0.0

    @property
    def compression_ratio(self) -> float:
        """Uncompressed-to-compressed edge ratio (the Table 2/3 headline)."""
        if self.compressed_edges == 0:
            return 0.0
        return self.uncompressed_edges / self.compressed_edges

    @property
    def avg_critical_nodes(self) -> float:
        return self.critical_nodes / self.boostable if self.boostable else 0.0

    @property
    def memory_mb(self) -> float:
        """Estimated megabytes holding all boostable PRR-graphs.

        The analogue of the parenthesised numbers in the paper's Tables 2/3
        (additional memory for boostable PRR-graphs).
        """
        return self.stored_bytes / (1024.0 * 1024.0)


def _arena_stats(arena: PRRArena) -> CollectionStats:
    stats = CollectionStats()
    codes = arena.status_codes
    stats.total = int(codes.size)
    stats.activated = int(np.count_nonzero(codes == 0))
    stats.hopeless = int(np.count_nonzero(codes == 1))
    stats.boostable = int(np.count_nonzero(codes == 2))
    boostable = codes == 2
    edge_counts = np.diff(arena.edge_indptr)[boostable]
    node_counts = np.diff(arena.node_indptr)[boostable]
    crit_counts = np.diff(arena.crit_indptr)[boostable]
    stats.uncompressed_edges = int(arena.uncomp_edges[boostable].sum())
    stats.compressed_edges = int(edge_counts.sum())
    stats.critical_nodes = int(crit_counts.sum())
    # Same per-graph formula as PRRGraph.estimated_bytes, summed.
    stats.stored_bytes = int(
        17 * edge_counts.sum() + 8 * node_counts.sum() + 8 * crit_counts.sum()
    )
    return stats


def collection_stats(prr_graphs: Union[PRRArena, Iterable[PRRGraph]]) -> CollectionStats:
    """Compute :class:`CollectionStats` over ``prr_graphs``.

    Arena input is reduced with vectorized sums; iterables of
    :class:`PRRGraph` objects keep the per-graph accumulation.
    """
    if isinstance(prr_graphs, PRRArena):
        return _arena_stats(prr_graphs)
    stats = CollectionStats()
    for g in prr_graphs:
        stats.add(g)
    return stats
