"""Parallel sampling on a persistent zero-copy shared-memory runtime.

The paper parallelizes PRR-graph generation with OpenMP over eight
threads.  The Python analogue here is a process-based runtime built for
repeated use:

* **Zero-copy graph publication** — the graph's CSR arrays and edge
  probabilities are written once into a single
  :mod:`multiprocessing.shared_memory` segment
  (:class:`SharedGraphRuntime`); workers attach by name and build their
  :class:`~repro.engine.SamplingEngine` over read-only views, so neither
  pool startup nor any task pays a per-worker graph pickle.
* **Persistent pull-scheduled workers** — one pool per graph survives
  across calls (IMM doubling rounds, repeated ``prr_boost`` runs, …).
  Tasks are small sample chunks on one shared queue; an idle worker
  steals the next chunk the moment it finishes, so cheap chunks
  (activated/hopeless roots) never leave a worker idling behind a static
  partition.
* **Tag-multiplexed submissions** — every dispatch gets a runtime-unique
  tag and a collector thread demultiplexes results per tag
  (:meth:`SharedGraphRuntime.submit` / :meth:`~SharedGraphRuntime.gather`),
  so concurrent callers — the serving tier's overlapped ``run_many``
  lanes — pipeline independent queries' sampling chunks onto one pool
  instead of taking turns.
* **Raw-buffer results** — workers sample with the lane kernels and ship
  flat arrays back (:class:`~repro.core.prr.PRRArena` payloads, critical
  or RR CSRs).  Large results travel through a per-result shared-memory
  segment — bytes, not pickled object graphs; small ones ride the result
  queue directly, which is cheaper than a segment round-trip.

Determinism: chunking is a pure function of ``count`` and each chunk's
RNG seed is spawned from its chunk id, so a collection depends only on
``(count, master_seed)`` — not on worker count, scheduling, or whether
the serial fallback ran.  The serial fallback (``workers <= 1``, or a
platform without ``fork``) iterates the same chunks in-process without
touching any pool machinery.

Fault tolerance: the same determinism contract is what makes the
runtime *supervised* rather than merely fail-fast.  Workers announce
each chunk they pull (a claim message ahead of the result), so the
collector knows chunk ownership; a liveness sweep detects dead workers,
re-enqueues their unacknowledged chunks with bounded retries and
exponential backoff (re-executing a chunk is bit-identical — it is a
pure function of its id and seed), and respawns replacements against
the already-published shared graph.  After too many consecutive worker
deaths the runtime **degrades** instead of raising: remaining chunks run
serially in-process inside :meth:`SharedGraphRuntime.gather`, and later
dispatches bypass the pool entirely — same results, no recovery storm.
:meth:`SharedGraphRuntime.health` snapshots the supervision counters
(:class:`RuntimeHealth`), and a process-wide shared-memory registry with
an ``atexit``/SIGTERM reaper (:func:`reap_shm_segments`) unlinks
orphaned ``repro-*`` segments even on abnormal exit.  Every recovery
path is deterministically drivable via :mod:`repro.testing.faults`.

The pre-runtime implementation (fork pool per call, pickled graph
initargs, pickled payload results, single-sample chunk loops) is kept as
``legacy_parallel_prr_collection`` / ``legacy_parallel_critical_sets`` —
the baseline ``benchmarks/bench_lanes.py`` measures the runtime against.
"""

from __future__ import annotations

import atexit
import heapq
import itertools
import math
import multiprocessing as mp
import os
import signal
import threading
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..engine import SamplingEngine
from ..engine.coverage import csr_to_frozensets
from ..graphs.digraph import CSRView, DiGraph
from ..testing import faults
from .prr import PRRArena, sample_prr_arena, sample_prr_lanes

__all__ = [
    "parallel_prr_collection",
    "parallel_critical_sets",
    "parallel_rr_csr",
    "SharedGraphRuntime",
    "RuntimeHealth",
    "runtime_health",
    "bind_distributed_runtime",
    "unbind_distributed_runtime",
    "distributed_runtime_for",
    "distributed_sampling_active",
    "run_chunks_local",
    "get_runtime",
    "shutdown_runtime",
    "shutdown_runtime_for",
    "runtime_is_alive",
    "reap_shm_segments",
    "fork_available",
    "resolve_sampler_workers",
    "PARALLEL_MIN_SAMPLES",
    "legacy_parallel_prr_collection",
    "legacy_parallel_critical_sets",
]

# Samples per streamed chunk: small enough that stragglers rebalance,
# large enough that per-chunk overhead (seed spawn + one result ship)
# stays negligible.  Chunks are lane batches, so CHUNK_SIZE is a multiple
# of the lane width.
CHUNK_SIZE = 256

# Results below this many bytes ride the queue; larger ones go through a
# per-result shared-memory segment.
_SHM_RESULT_MIN = 1 << 18


# Below this many samples a sampler dispatch stays in-process: a chunk
# queue round-trip costs more than two lane batches.
PARALLEL_MIN_SAMPLES = 512

# Supervision defaults.  A lost chunk is re-enqueued at most
# MAX_TASK_RETRIES times (exponential backoff from RETRY_BACKOFF_BASE
# seconds); after MAX_CONSECUTIVE_DEATHS worker deaths with no
# successful result in between, the runtime degrades to the in-process
# serial path instead of respawning further.
MAX_TASK_RETRIES = 3
RETRY_BACKOFF_BASE = 0.05
MAX_CONSECUTIVE_DEATHS = 3

# How often the collector sweeps worker liveness / due retries when no
# results are arriving.  Bounds fault-detection latency, not result
# latency — gatherers are woken per arriving result.
_POLL_INTERVAL = 0.2

# Escape hatch for overhead measurement (benchmarks/bench_faults.py):
# setting REPRO_RUNTIME_SUPERVISION=0 before the pool starts disables
# claim messages and liveness sweeps, reproducing the pre-supervision
# fail-fast runtime as a same-machine baseline arm.
_SUPERVISION_ENV = "REPRO_RUNTIME_SUPERVISION"


def _supervision_enabled() -> bool:
    return os.environ.get(_SUPERVISION_ENV, "1") != "0"


def fork_available() -> bool:
    """Whether the platform supports the fork start method."""
    return "fork" in mp.get_all_start_methods()


def resolve_sampler_workers(workers: int | None) -> int:
    """Effective worker count for a sampler: explicit value, or 1 (serial)
    when unset or the platform lacks fork."""
    if workers is None or workers <= 1 or not fork_available():
        return 1
    return int(workers)


def _resolve_workers(workers: int | None) -> int:
    return workers or min(os.cpu_count() or 1, 8)


def _chunk_jobs(count: int, master_seed: int) -> List[Tuple[int, int, int]]:
    """``(chunk_id, seed, size)`` jobs of at most :data:`CHUNK_SIZE` samples.

    The chunking is a pure function of ``count`` (never of the worker
    count), and each chunk's RNG seed is spawned from its chunk id — so
    the merged collection depends only on ``(count, master_seed)``, no
    matter how many workers ran or in which order chunks finished.
    """
    if count <= 0:
        return []
    num_chunks = math.ceil(count / CHUNK_SIZE)
    base, extra = divmod(count, num_chunks)
    sizes = [base + (1 if i < extra else 0) for i in range(num_chunks)]
    seq = np.random.SeedSequence(master_seed)
    seeds = [int(s.generate_state(1)[0]) for s in seq.spawn(num_chunks)]
    return [
        (cid, seed, size)
        for cid, (seed, size) in enumerate(zip(seeds, sizes))
        if size > 0
    ]


# ----------------------------------------------------------------------
# Shared-memory plumbing
# ----------------------------------------------------------------------
# Resource-tracker note: the runtime requires fork, so every process
# shares the master's tracker.  CPython's SharedMemory registers a name
# on open (a set add, idempotent across attachers) and unregisters it in
# unlink() — each segment here is unlinked exactly once by its consumer,
# so the ledger balances without any manual (un)registration.
#
# On top of that sits a process-wide *named-segment registry*: every
# segment is created under the ``repro-<master-pid>-…`` prefix and
# recorded in ``_shm_registry``; :func:`reap_shm_segments` (run at
# interpreter exit and on SIGTERM, callable any time after shutdown)
# unlinks whatever is left — including segments published by *workers*
# that died before the master could consume them, found by scanning
# ``/dev/shm`` for the shared prefix.  Normal operation unlinks every
# segment promptly; the reaper exists for abnormal exits.

_ArrayTable = List[Tuple[str, str, tuple, int]]

# The prefix is fixed at import time in the master, so forked workers
# inherit it and every segment of one process tree shares it.
_SHM_PREFIX = f"repro-{os.getpid():x}"
_shm_counter = itertools.count()
_shm_registry: set = set()
_SHM_REG_LOCK = threading.Lock()


def _create_shm(size: int) -> shared_memory.SharedMemory:
    """A fresh registered segment under this process tree's name prefix."""
    while True:
        name = f"{_SHM_PREFIX}-{os.getpid():x}-{next(_shm_counter):x}"
        try:
            shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        except FileExistsError:  # pragma: no cover - counter collision
            continue
        with _SHM_REG_LOCK:
            _shm_registry.add(name)
        return shm


def _unregister_shm(name: str) -> None:
    with _SHM_REG_LOCK:
        _shm_registry.discard(name)


def reap_shm_segments() -> List[str]:
    """Unlink every leftover ``repro-*`` segment of this process tree.

    Covers the registry (segments this process created) plus, on
    platforms exposing ``/dev/shm``, a prefix scan that also catches
    segments published by crashed workers.  Safe to call repeatedly;
    returns the names actually reaped.  Only call while no runtime of
    this process is live — the reaper cannot tell an orphan from a
    segment still in use by an open pool.
    """
    with _SHM_REG_LOCK:
        names = set(_shm_registry)
        _shm_registry.clear()
    shm_dir = "/dev/shm"
    if os.path.isdir(shm_dir):
        try:
            names.update(
                entry for entry in os.listdir(shm_dir)
                if entry.startswith(_SHM_PREFIX + "-")
            )
        except OSError:  # pragma: no cover - defensive
            pass
    reaped = []
    for name in sorted(names):
        try:
            seg = shared_memory.SharedMemory(name=name)
        except (FileNotFoundError, OSError):
            continue
        try:
            seg.close()
            seg.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - raced
            continue
        reaped.append(name)
    return reaped


_sigterm_installed = False


def _sigterm_reaper(signum, frame):  # pragma: no cover - signal path
    try:
        shutdown_runtime()
    except Exception:
        pass
    reap_shm_segments()
    signal.signal(signum, signal.SIG_DFL)
    os.kill(os.getpid(), signum)


def _install_sigterm_reaper() -> None:
    """Chain a SIGTERM reaper once, only over the default handler and
    only from the main thread — never clobber an application handler."""
    global _sigterm_installed
    if _sigterm_installed:
        return
    _sigterm_installed = True
    if threading.current_thread() is not threading.main_thread():
        return
    try:
        if signal.getsignal(signal.SIGTERM) is signal.SIG_DFL:
            signal.signal(signal.SIGTERM, _sigterm_reaper)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass


def _publish_arrays(
    arrays: Dict[str, np.ndarray]
) -> Tuple[shared_memory.SharedMemory, _ArrayTable]:
    """Copy ``arrays`` into one fresh shared-memory segment.

    Returns the segment plus an offset table (name, dtype, shape, offset)
    that :func:`_attach_arrays` uses to rebuild zero-copy views.
    """
    table: _ArrayTable = []
    offset = 0
    contiguous = {}
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        contiguous[name] = arr
        table.append((name, arr.dtype.str, arr.shape, offset))
        offset += arr.nbytes
        offset = (offset + 63) & ~63  # 64-byte alignment
    shm = _create_shm(max(offset, 1))
    for (name, _dt, _shape, off), arr in zip(table, contiguous.values()):
        if arr.nbytes:
            dst = np.frombuffer(
                shm.buf, dtype=arr.dtype, count=arr.size, offset=off
            )
            dst[:] = arr.ravel()
    return shm, table


def _attach_arrays(
    shm: shared_memory.SharedMemory, table: _ArrayTable
) -> Dict[str, np.ndarray]:
    """Zero-copy read-only views of a published segment."""
    out = {}
    for name, dtype_str, shape, offset in table:
        dt = np.dtype(dtype_str)
        size = int(np.prod(shape, dtype=np.int64))
        arr = np.frombuffer(shm.buf, dtype=dt, count=size, offset=offset)
        arr = arr.reshape(shape)
        arr.flags.writeable = False
        out[name] = arr
    return out


def _ship_result(arrays: Sequence[np.ndarray]):
    """Package worker output: queue-inline when small, else one shared
    segment of raw buffers."""
    arrays = [np.ascontiguousarray(a) for a in arrays]
    total = sum(a.nbytes for a in arrays)
    if total < _SHM_RESULT_MIN:
        return ("q", arrays)
    named = {str(i): a for i, a in enumerate(arrays)}
    shm, table = _publish_arrays(named)
    shm.close()  # the master unlinks after copying out
    return ("shm", shm.name, table)


def _receive_result(msg) -> List[np.ndarray]:
    """Unpack :func:`_ship_result` output (copies out of shared memory)."""
    if msg[0] == "q":
        return list(msg[1])
    _tag, name, table = msg
    shm = shared_memory.SharedMemory(name=name)  # attach: not re-tracked
    views = _attach_arrays(shm, table)
    out = [np.array(views[str(i)], copy=True) for i in range(len(table))]
    del views
    shm.close()
    shm.unlink()
    _unregister_shm(name)
    return out


class _SharedGraphView:
    """Duck-typed :class:`DiGraph` over shared-memory array views.

    Exposes exactly what :class:`~repro.engine.SamplingEngine` and the
    samplers consume (``n``/``m``, the two CSR views, the flat edge
    arrays) without ever materializing a private copy of the graph.
    """

    def __init__(self, n: int, m: int, shm, arrays: Dict[str, np.ndarray]):
        self.n = n
        self.m = m
        self._shm = shm  # keeps the segment mapped
        self._a = arrays
        self._engine_cache = None

    def out_csr(self) -> CSRView:
        a = self._a
        return CSRView(
            a["out_indptr"], a["out_nodes"], a["out_p"], a["out_pp"], a["out_eid"]
        )

    def in_csr(self) -> CSRView:
        a = self._a
        return CSRView(
            a["in_indptr"], a["in_nodes"], a["in_p"], a["in_pp"], a["in_eid"]
        )

    def edge_arrays(self):
        a = self._a
        return a["src"], a["dst"], a["p"], a["pp"]


def _publishable_store_path(graph) -> Optional[str]:
    """The store path workers can attach to directly, if any.

    Only **pristine** store-backed graphs qualify: ``version == 0``
    means every array the workers would read is exactly what the file
    holds.  After an in-place probability update the live arrays diverge
    from the file (copy-on-write), so the runtime falls back to the
    shared-memory publication of the current arrays.
    """
    path = getattr(graph, "store_path", None)
    if path is None or getattr(graph, "version", 0) != 0:
        return None
    return path if os.path.exists(path) else None


def _graph_arrays(graph: DiGraph) -> Dict[str, np.ndarray]:
    out = graph.out_csr()
    inc = graph.in_csr()
    src, dst, p, pp = graph.edge_arrays()
    return {
        "out_indptr": out.indptr, "out_nodes": out.nodes, "out_p": out.p,
        "out_pp": out.pp, "out_eid": out.eid,
        "in_indptr": inc.indptr, "in_nodes": inc.nodes, "in_p": inc.p,
        "in_pp": inc.pp, "in_eid": inc.eid,
        "src": src, "dst": dst, "p": p, "pp": pp,
    }


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------
def _run_task(graph, kind: str, seed: int, size: int, params) -> List[np.ndarray]:
    """Sample one chunk on ``graph`` (a view in workers, the real graph in
    the serial fallback) and return the result as a flat array list."""
    rng = np.random.default_rng(seed)
    if kind == "prr":
        seed_set, k = params
        arena = sample_prr_lanes(graph, frozenset(seed_set), k, rng, size)
        return list(arena.payload()[1:])  # n is implicit
    if kind == "critical":
        (seed_set,) = params
        engine = SamplingEngine.for_graph(graph)
        status, counts, values, explored = engine.critical_lane_csr(
            frozenset(seed_set), rng, size
        )
        return [status, counts, values, explored]
    if kind == "rr":
        engine = SamplingEngine.for_graph(graph)
        counts, values = engine.rr_lane_csr(rng, size)
        return [counts, values]
    raise ValueError(f"unknown task kind: {kind}")


def _worker_main(
    source, n, m, task_queue, result_queue, worker_id, generation
) -> None:
    plan = faults.plan_from_env()  # inherited at fork; None in production
    supervised = _supervision_enabled()
    if source[0] == "store":
        # mmap-backed graph: attach by path.  Every worker maps the same
        # file, so the page cache is shared across the pool and no copy
        # of the graph is ever serialized or published.
        from ..storage.store import open_graph

        view = open_graph(source[1], mode="mmap")
    else:
        _tag, shm_name, table = source
        shm = shared_memory.SharedMemory(name=shm_name)  # attach: not re-tracked
        view = _SharedGraphView(n, m, shm, _attach_arrays(shm, table))
    SamplingEngine.for_graph(view)  # warm the engine once
    chunk_index = 0
    while True:
        task = task_queue.get()
        if task is None:
            break
        task_id, kind, seed, size, params = task
        chunk_index += 1
        if supervised:
            # Claim before computing: the collector learns chunk
            # ownership, so a death (or a vanished result) is attributable
            # to exactly one chunk and that chunk can be re-enqueued.
            result_queue.put(("claim", worker_id, task_id))
        action = (
            plan.action_for(worker_id, generation, chunk_index)
            if plan is not None
            else faults.NO_ACTION
        )
        if action.delay_s:
            time.sleep(action.delay_s)
        if action.kill:
            # Simulated hard crash mid-chunk (no result, no cleanup).  The
            # queue is closed first so the feeder thread drains the claim
            # to the master — modelling a worker that died *during* the
            # computation, after ownership was observable.  (A death in
            # the sub-millisecond window before the claim flushes is the
            # known-unattributable race documented on the runtime.)
            result_queue.close()
            result_queue.join_thread()
            os._exit(17)
        if action.drop:
            continue  # simulated lost result message
        try:
            msg = _ship_result(_run_task(view, kind, seed, size, params))
            result_queue.put(("res", worker_id, task_id, True, msg))
        except Exception as exc:  # surface, don't hang the master
            result_queue.put(("res", worker_id, task_id, False, repr(exc)))
    # Flush pending queue feeds, then exit without interpreter teardown:
    # the engine holds views into the shared segment, and unwinding them
    # through GC trips BufferError in SharedMemory.__del__.
    result_queue.close()
    result_queue.join_thread()
    os._exit(0)


@dataclass(frozen=True)
class RuntimeHealth:
    """A point-in-time snapshot of the runtime's supervision state.

    ``workers`` is the configured pool size, ``workers_alive`` how many
    processes currently pass ``is_alive``; ``restarts`` counts worker
    respawns, ``retries`` chunk re-enqueues, and ``degraded`` whether the
    runtime has given up on the pool and fallen back to the in-process
    serial path (results stay bit-identical — only throughput changes).

    For the distributed runtime the same fields are reinterpreted at
    host granularity — ``workers`` is the summed remote capacity,
    ``restarts`` counts host losses, ``retries`` chunk re-assignments —
    and ``hosts`` carries one counter dict per configured worker host.
    """

    workers: int
    workers_alive: int
    restarts: int
    retries: int
    degraded: bool
    hosts: Optional[Tuple[Dict[str, Any], ...]] = None

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "workers": int(self.workers),
            "workers_alive": int(self.workers_alive),
            "restarts": int(self.restarts),
            "retries": int(self.retries),
            "degraded": bool(self.degraded),
        }
        if self.hosts is not None:
            out["hosts"] = [dict(h) for h in self.hosts]
        return out


# ----------------------------------------------------------------------
# Runtime
# ----------------------------------------------------------------------
class SharedGraphRuntime:
    """A persistent worker pool bound to one graph's shared arrays.

    Construction publishes the graph once and forks ``workers``
    long-lived processes.  Work is **tag-multiplexed**: every submission
    (:meth:`submit`) gets a runtime-unique tag, its chunk tasks carry
    ``(tag, chunk_id)`` ids on the one shared task queue, and a collector
    thread demultiplexes the result queue back into per-tag stashes.
    That is what lets several queries' sampling phases share the worker
    pool *concurrently* — the serving tier's overlapped ``run_many``
    submits every query's chunks up front (each from its own lane
    thread) and each lane blocks only on :meth:`gather` of its own tag,
    running its selection phase the moment its samples are complete
    while other queries' chunks still occupy the workers.

    :meth:`run` is the one-shot form (submit + gather) used by the
    per-collection entry points below; it is safe to call from multiple
    threads at once.  Reused across calls via :func:`get_runtime`;
    :meth:`shutdown` (or interpreter exit) releases processes and shared
    memory.

    Determinism is untouched by the multiplexing: chunking stays a pure
    function of ``count`` and each chunk's RNG seed of its chunk id, so
    a collection depends only on ``(count, master_seed)`` no matter how
    many tags interleaved on the pool.
    """

    def __init__(
        self,
        graph: DiGraph,
        workers: int,
        max_task_retries: int = MAX_TASK_RETRIES,
        max_consecutive_deaths: int = MAX_CONSECUTIVE_DEATHS,
        retry_backoff: float = RETRY_BACKOFF_BASE,
        task_timeout: Optional[float] = None,
    ) -> None:
        if not fork_available():
            raise RuntimeError("SharedGraphRuntime requires the fork start method")
        _install_sigterm_reaper()
        self.graph = graph
        self.graph_version = getattr(graph, "version", 0)
        self.workers = int(workers)
        self.supervised = _supervision_enabled()
        self.max_task_retries = int(max_task_retries)
        self.max_consecutive_deaths = int(max_consecutive_deaths)
        self.retry_backoff = float(retry_backoff)
        # Optional straggler bound: a *claimed* chunk with no result after
        # this many seconds is re-enqueued (its late duplicate, if any, is
        # deduplicated on arrival — chunks are deterministic).  Off by
        # default: chunk cost is workload-dependent and a false positive
        # doubles work.  Catches lost results from workers that stay
        # alive, which the liveness sweep cannot see.
        self.task_timeout = task_timeout
        self._ctx = mp.get_context("fork")
        # Publication: pristine store-backed graphs are published *by
        # path* — workers mmap the store file themselves, so pool startup
        # copies nothing and all workers share one page-cache image.
        # Everything else is copied once into a shared-memory segment.
        store_path = _publishable_store_path(graph)
        if store_path is not None:
            self._shm = None
            self._source: tuple = ("store", store_path)
        else:
            self._shm, table = _publish_arrays(_graph_arrays(graph))
            self._source = ("shm", self._shm.name, table)
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._closed = False
        self._shutdown_lock = threading.Lock()
        # Tag-multiplexing + supervision state, guarded by the condition's
        # lock (spawn/respawn of processes happens outside it).
        self._cv = threading.Condition()
        self._next_tag = 0
        self._pending: Dict[int, set] = {}      # tag -> outstanding cids
        self._order: Dict[int, List[int]] = {}  # tag -> submission cid order
        self._stash: Dict[int, Dict[int, List[np.ndarray]]] = {}
        # tag -> (kind, params, {cid: (seed, size)}): what re-enqueue and
        # the degraded serial fallback need to re-execute a chunk.
        self._specs: Dict[int, Tuple[str, tuple, Dict[int, Tuple[int, int]]]] = {}
        self._inflight: Dict[int, Tuple[tuple, float]] = {}  # slot -> (task, t)
        self._task_retries: Dict[tuple, int] = {}
        self._deferred: List[tuple] = []  # heap of (due, seq, task_tuple)
        self._deferred_seq = itertools.count()
        self._generation = [0] * self.workers
        self._dead_handled: set = set()
        self._restarts = 0
        self._retries_total = 0
        # Per-slot run of deaths with no intervening result from that
        # slot.  A one-time burst (every worker killed at once) is one
        # death per slot and recovers; a slot whose respawns keep dying
        # is the hopeless-environment signal that triggers degradation.
        self._death_streak = [0] * self.workers
        self._degraded = False
        self._failure: Optional[str] = None
        self._procs: List[mp.process.BaseProcess] = [None] * self.workers
        for slot in range(self.workers):
            self._spawn(slot)
        self._collector = threading.Thread(
            target=self._collect_loop, name="runtime-collector", daemon=True
        )
        self._collector.start()

    def _spawn(self, slot: int) -> None:
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                self._source, self.graph.n, self.graph.m,
                self._tasks, self._results, slot, self._generation[slot],
            ),
            daemon=True,
        )
        proc.start()
        self._procs[slot] = proc

    @property
    def degraded(self) -> bool:
        return self._degraded

    @property
    def publication(self) -> str:
        """How workers attach to the graph: ``"store"`` (mmap by path)
        or ``"shm"`` (copied into a shared-memory segment)."""
        return self._source[0]

    # ------------------------------------------------------------------
    # Tagged submission API
    # ------------------------------------------------------------------
    def submit(
        self, kind: str, jobs: Sequence[Tuple[int, int, int]], params: tuple
    ) -> int:
        """Enqueue ``jobs`` (``(chunk_id, seed, size)``) under a fresh tag.

        Non-blocking: returns the tag immediately; workers start pulling
        the chunks as soon as they go idle.  Thread-safe.
        """
        with self._cv:
            if self._closed:
                raise RuntimeError("runtime is shut down")
            if self._failure is not None:
                raise RuntimeError(self._failure)
            tag = self._next_tag
            self._next_tag += 1
            self._pending[tag] = {cid for cid, _seed, _size in jobs}
            self._order[tag] = [cid for cid, _seed, _size in jobs]
            self._stash[tag] = {}
            self._specs[tag] = (
                kind, params, {cid: (seed, size) for cid, seed, size in jobs}
            )
        for cid, seed, size in jobs:
            self._tasks.put(((tag, cid), kind, seed, size, params))
        return tag

    def gather(self, tag: int) -> List[List[np.ndarray]]:
        """Block until every chunk of ``tag`` has arrived; return their
        results in submission order.  Thread-safe; each tag may be
        gathered exactly once.

        Wake-up is event-driven — the collector notifies on *every*
        arriving result, so small batches complete with no polling
        quantization (the wait timeout below is only a liveness backstop).

        Recovery: lost chunks are re-enqueued transparently by the
        collector; if the runtime **degrades** (too many consecutive
        worker deaths) the gatherer claims its remaining chunks and runs
        them serially in-process — bit-identical by the determinism
        contract.  Only an unrecoverable failure (a chunk that *raises*
        in a worker, or retries exhausted) tears the runtime down before
        raising."""
        failure = None
        while True:
            serial: List[Tuple[int, int, int]] = []
            with self._cv:
                if self._failure is not None:
                    failure = self._failure
                    break
                pending = self._pending.get(tag)
                if pending is None:
                    raise KeyError(f"unknown or already-gathered tag {tag}")
                if not pending:
                    del self._pending[tag]
                    order = self._order.pop(tag)
                    chunks = self._stash.pop(tag)
                    self._specs.pop(tag, None)
                    return [chunks[cid] for cid in order]
                if self._degraded:
                    # Claim every outstanding chunk of this tag for serial
                    # in-process execution.  Removing them from the pending
                    # set means a late worker duplicate is dropped on
                    # arrival (it would be identical anyway).
                    kind, params, chunkmap = self._specs[tag]
                    serial = [(cid, *chunkmap[cid]) for cid in sorted(pending)]
                    pending.clear()
                else:
                    self._cv.wait(timeout=0.5)
            for cid, seed, size in serial:
                arrays = _run_task(self.graph, kind, seed, size, params)
                with self._cv:
                    self._stash[tag][cid] = arrays
        self.shutdown()
        raise RuntimeError(failure)

    def run(
        self, kind: str, jobs: Sequence[Tuple[int, int, int]], params: tuple
    ) -> List[List[np.ndarray]]:
        """Execute ``jobs`` and return their results in submission order
        (one-shot :meth:`submit` + :meth:`gather`)."""
        return self.gather(self.submit(kind, jobs, params))

    # ------------------------------------------------------------------
    # Collector + supervision
    # ------------------------------------------------------------------
    def _is_outstanding(self, task_id: tuple) -> bool:
        """Whether a chunk is still owed a result (caller holds the cv)."""
        tag, cid = task_id
        pending = self._pending.get(tag)
        return pending is not None and cid in pending

    def _requeue(self, task_id: tuple, why: str) -> None:
        """Schedule a lost chunk for re-execution (caller holds the cv).

        Bounded retries with exponential backoff; exhausting them is the
        one unrecoverable outcome and sets :attr:`_failure`.
        """
        if not self._is_outstanding(task_id):
            return
        retries = self._task_retries.get(task_id, 0) + 1
        if retries > self.max_task_retries:
            self._failure = (
                f"chunk {task_id} lost {retries} times "
                f"(last cause: {why}); retries exhausted"
            )
            self._cv.notify_all()
            return
        self._task_retries[task_id] = retries
        self._retries_total += 1
        tag, cid = task_id
        spec = self._specs.get(tag)
        if spec is None:  # pragma: no cover - tag abandoned meanwhile
            return
        kind, params, chunkmap = spec
        seed, size = chunkmap[cid]
        due = time.monotonic() + self.retry_backoff * (2 ** (retries - 1))
        heapq.heappush(
            self._deferred,
            (due, next(self._deferred_seq), (task_id, kind, seed, size, params)),
        )

    def _service_deferred(self) -> None:
        """Move due re-enqueued chunks back onto the task queue."""
        now = time.monotonic()
        ready = []
        with self._cv:
            while self._deferred and self._deferred[0][0] <= now:
                _due, _seq, task = heapq.heappop(self._deferred)
                ready.append(task)
        for task in ready:
            self._tasks.put(task)

    def _sweep(self) -> None:
        """Detect dead workers; re-enqueue their chunks and respawn them.

        Each death increments its slot's death streak (reset by a result
        from that slot, so a one-time burst of deaths recovers); when a
        slot's respawns have died :attr:`max_consecutive_deaths` times in
        a row the runtime degrades — no further respawns, gatherers finish serially — which
        bounds the recovery storm a persistently crashing environment
        could otherwise cause.  With :attr:`task_timeout` set, claimed
        chunks whose result never arrived (worker alive but wedged, or
        the result message lost) are re-enqueued too.
        """
        respawn: List[int] = []
        now = time.monotonic()
        with self._cv:
            if self._closed or self._failure is not None:
                return
            for slot, proc in enumerate(self._procs):
                if proc.is_alive() or slot in self._dead_handled:
                    continue
                self._dead_handled.add(slot)
                lost = self._inflight.pop(slot, None)
                if lost is not None:
                    self._requeue(lost[0], f"worker {slot} died")
                self._death_streak[slot] += 1
                if self._degraded:
                    continue
                if self._death_streak[slot] >= self.max_consecutive_deaths:
                    self._degraded = True
                    self._cv.notify_all()  # gatherers take over serially
                    continue
                self._generation[slot] += 1
                self._restarts += 1
                respawn.append(slot)
            if self.task_timeout is not None:
                for slot, (task_id, claimed_at) in list(self._inflight.items()):
                    if now - claimed_at > self.task_timeout:
                        del self._inflight[slot]
                        self._requeue(task_id, f"no result within {self.task_timeout}s")
        for slot in respawn:
            self._spawn(slot)  # outside the lock: process start is slow
            with self._cv:
                self._dead_handled.discard(slot)

    def _collect_loop(self) -> None:
        """Drain the result queue into the per-tag stashes (single reader).

        Runs until shutdown.  Claim messages maintain per-worker chunk
        ownership; result arrivals wake every gatherer promptly (no
        polling floor on small batches).  Between messages — and at least
        every :data:`_POLL_INTERVAL` seconds — the liveness sweep and the
        retry queue run.  Sets :attr:`_failure` only for unrecoverable
        outcomes (a chunk that raised in a worker, retries exhausted);
        result payloads are copied out of (and their segments unlinked
        from) shared memory here, so abandoned tags never leak segments.
        """
        last_sweep = time.monotonic()
        while not self._closed:
            self._service_deferred()
            try:
                msg = self._results.get(timeout=_POLL_INTERVAL)
            except Exception:
                msg = None
            if self.supervised:
                now = time.monotonic()
                if msg is None or now - last_sweep >= _POLL_INTERVAL:
                    self._sweep()
                    last_sweep = now
            if msg is None:
                continue
            if msg[0] == "claim":
                _kind, wid, task_id = msg
                with self._cv:
                    prev = self._inflight.get(wid)
                    self._inflight[wid] = (task_id, time.monotonic())
                    if prev is not None and prev[0] != task_id:
                        # The worker moved on without ever shipping the
                        # previous chunk's result: treat it as lost.
                        self._requeue(
                            prev[0], f"worker {wid} superseded it unanswered"
                        )
                continue
            _kind, wid, (tag, cid), ok, payload = msg
            if not ok:
                with self._cv:
                    self._failure = f"worker task ({tag}, {cid}) failed: {payload}"
                    self._cv.notify_all()
                continue
            try:
                arrays = _receive_result(payload)
            except Exception as exc:  # pragma: no cover - defensive
                with self._cv:
                    self._failure = f"result unpack failed: {exc!r}"
                    self._cv.notify_all()
                continue
            with self._cv:
                held = self._inflight.get(wid)
                if held is not None and held[0] == (tag, cid):
                    del self._inflight[wid]
                if 0 <= wid < len(self._death_streak):
                    self._death_streak[wid] = 0
                pending = self._pending.get(tag)
                if pending is not None and cid in pending:
                    self._stash[tag][cid] = arrays
                    pending.discard(cid)
                # else: tag abandoned or chunk already satisfied (late
                # duplicate after a retry) — arrays dropped, segment
                # already unlinked by _receive_result.
                self._cv.notify_all()  # wake gatherers per result arrival

    def health(self) -> RuntimeHealth:
        """A consistent snapshot of the supervision counters."""
        with self._cv:
            return RuntimeHealth(
                workers=self.workers,
                workers_alive=sum(
                    p is not None and p.is_alive() for p in self._procs
                ),
                restarts=self._restarts,
                retries=self._retries_total,
                degraded=self._degraded,
            )

    def shutdown(self, timeout: float = 15.0) -> None:
        """Tear the pool down (idempotent, concurrency-safe, bounded).

        Total teardown wall-clock is capped by ``timeout``: the drain
        phase and the per-worker joins share one deadline, and workers
        still alive past it are terminated (then killed).  Safe against a
        half-dead pool — sentinels go onto the task queue regardless of
        which workers still live, a dead worker's sentinel is simply
        never consumed, and joins on already-dead processes return
        immediately.
        """
        with self._shutdown_lock:
            if self._closed:
                return
            self._closed = True
        deadline = time.monotonic() + max(float(timeout), 0.1)
        with self._cv:
            if self._failure is None:
                self._failure = "runtime is shut down"
            self._cv.notify_all()
        self._collector.join(timeout=min(5.0, max(deadline - time.monotonic(), 0.1)))
        for _ in self._procs:
            try:
                self._tasks.put(None)
            except Exception:  # pragma: no cover - broken queue
                pass
        # Drain in-flight results *while* workers wind down: a worker
        # mid-put must not block forever against a full pipe, and every
        # abandoned result's shared segment needs unlinking.  Bounded, and
        # tolerant of truncated/claim messages from dying workers.
        while time.monotonic() < deadline:
            try:
                msg = self._results.get(timeout=0.25)
            except Exception:
                if not any(p is not None and p.is_alive() for p in self._procs):
                    break
                continue
            if msg and msg[0] == "res" and msg[3]:
                try:
                    _receive_result(msg[4])
                except Exception:  # pragma: no cover - defensive
                    pass
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=max(deadline - time.monotonic(), 0.1))
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=0.5)
                if proc.is_alive():
                    proc.kill()
        # cancel_join_thread: never block interpreter exit on unflushed
        # queue buffers — every worker is gone by now.
        self._tasks.close()
        self._tasks.cancel_join_thread()
        self._results.close()
        self._results.cancel_join_thread()
        if self._shm is not None:  # store-published runtimes own no segment
            try:
                self._shm.close()
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
            _unregister_shm(self._shm.name)


_runtime: Optional[SharedGraphRuntime] = None
_RUNTIME_LOCK = threading.Lock()


def get_runtime(graph: DiGraph, workers: int) -> SharedGraphRuntime:
    """The cached runtime for ``graph`` (created/replaced on demand).

    One runtime is kept alive at a time — repeated calls with the same
    graph (at its current :attr:`~repro.graphs.DiGraph.version`) and a
    compatible worker count reuse the warm pool, which is what makes
    multi-round algorithms (IMM doubling, repeated boosts) pay pool
    startup once per graph instead of once per call.  A version bump
    (in-place probability update) retires the pool: its published
    segment holds the pre-mutation arrays.  Thread-safe — overlap lanes
    race here on first parallel dispatch.
    """
    global _runtime
    with _RUNTIME_LOCK:
        if (
            _runtime is not None
            and not _runtime._closed
            and _runtime.graph is graph
            and _runtime.graph_version == getattr(graph, "version", 0)
            and _runtime.workers >= workers
        ):
            return _runtime
        if _runtime is not None:
            _runtime.shutdown()
        _runtime = SharedGraphRuntime(graph, workers)
        return _runtime


def shutdown_runtime() -> None:
    """Tear down the cached runtime (idempotent; also runs at exit)."""
    global _runtime
    if _runtime is not None:
        _runtime.shutdown()
        _runtime = None


def shutdown_runtime_for(graph) -> bool:
    """Tear down the cached runtime iff it is bound to ``graph``.

    The hook :meth:`repro.api.Session.close` uses to release worker
    processes and shared-memory segments it is responsible for without
    disturbing a runtime some other graph's caller still owns.  Returns
    whether a runtime was shut down.
    """
    global _runtime
    if _runtime is not None and _runtime.graph is graph:
        shutdown_runtime()
        return True
    return False


def runtime_is_alive(graph) -> bool:
    """Whether the cached runtime exists, is open, and serves ``graph``."""
    return _runtime is not None and not _runtime._closed and _runtime.graph is graph


def runtime_health(graph=None) -> Optional[RuntimeHealth]:
    """Supervision snapshot of the cached runtime, or ``None``.

    ``None`` means no runtime is live (serial configurations, fork-less
    platforms, post-shutdown) — or, when ``graph`` is given, that the
    live runtime serves a different graph.  A graph with a bound
    distributed runtime reports that runtime's host-granular health
    instead (see :mod:`repro.dist`).  The session/serving tiers report
    this through ``Session.stats()`` and ``/healthz``.
    """
    if graph is not None:
        dist = distributed_runtime_for(graph)
        if dist is not None:
            return dist.health()
    rt = _runtime
    if rt is None or rt._closed:
        return None
    if graph is not None and rt.graph is not graph:
        return None
    return rt.health()


# ----------------------------------------------------------------------
# Distributed runtime binding
# ----------------------------------------------------------------------
# Graphs with a multi-host sampling runtime attached (repro.dist) are
# registered here so the chunk executor below can route batch work to
# the coordinator without this module ever importing repro.dist (dist
# imports parallel for the chunking/payload contract — the dependency
# only points one way).  The registry holds anything duck-typed like
# DistributedRuntime: ``.run(kind, jobs, params)``, ``.active``,
# ``.degraded`` and ``.health()``.
_DIST_RUNTIMES: Dict[int, Any] = {}
_DIST_LOCK = threading.Lock()


def bind_distributed_runtime(graph, runtime) -> None:
    """Route ``graph``'s chunked sampling through ``runtime``.

    Subsequent multi-chunk dispatches (``parallel_rr_csr`` and friends)
    go to the distributed coordinator instead of the local pool while
    the binding holds.  One binding per graph; rebinding replaces."""
    with _DIST_LOCK:
        _DIST_RUNTIMES[id(graph)] = runtime


def unbind_distributed_runtime(graph) -> bool:
    """Drop ``graph``'s distributed binding (idempotent)."""
    with _DIST_LOCK:
        return _DIST_RUNTIMES.pop(id(graph), None) is not None


def distributed_runtime_for(graph) -> Optional[Any]:
    """The distributed runtime bound to ``graph``, if any (even a
    degraded one — the sampler dispatch gate keys off the *binding* so a
    session keeps drawing the chunked stream after degradation)."""
    with _DIST_LOCK:
        return _DIST_RUNTIMES.get(id(graph))


def distributed_sampling_active(graph) -> bool:
    """Whether samplers should take the chunked path for ``graph``
    regardless of their local ``workers`` setting.

    True whenever a distributed runtime is bound — including after it
    degraded to the local fallback — so every query of a ``hosts=``
    session draws the same chunk-seeded sample stream.  (Chunked results
    are a pure function of ``(count, master_seed)``, so this stream is
    identical to any local ``workers > 1`` run.)
    """
    return distributed_runtime_for(graph) is not None


# LIFO atexit: the reaper is registered first so it runs *after* the
# runtime shutdown below has unlinked everything it owns — catching only
# what an abnormal teardown left behind.
atexit.register(reap_shm_segments)
atexit.register(shutdown_runtime)


def _run_chunks(
    graph: DiGraph,
    kind: str,
    jobs: Sequence[Tuple[int, int, int]],
    params: tuple,
    workers: int,
) -> List[List[np.ndarray]]:
    """Run chunk jobs on the distributed runtime (when one is bound to
    ``graph``), else the local shared runtime, else serially in-process —
    same chunks, same seeds, same results on every path.  A **degraded**
    runtime (supervision gave up on its hosts/pool) is bypassed the same
    way: the next tier down is the graceful floor."""
    dist = distributed_runtime_for(graph)
    if dist is not None and len(jobs) > 1 and getattr(dist, "active", False):
        return dist.run(kind, jobs, params)
    return run_chunks_local(graph, kind, jobs, params, workers)


def run_chunks_local(
    graph: DiGraph,
    kind: str,
    jobs: Sequence[Tuple[int, int, int]],
    params: tuple,
    workers: int,
) -> List[List[np.ndarray]]:
    """Run chunk jobs on the local shared runtime, or serially in-process
    when ``workers <= 1`` / no fork — never through a distributed
    binding.  This is what ``repro dist-worker`` hosts (and the
    coordinator's degraded fallback) call, so a worker process that
    happens to share an interpreter with a coordinator can never bounce
    its own chunks back over the wire."""
    if workers > 1 and fork_available() and len(jobs) > 1:
        rt = get_runtime(graph, workers)
        if not rt.degraded:
            return rt.run(kind, jobs, params)
    return [
        _run_task(graph, kind, seed, size, params) for _cid, seed, size in jobs
    ]


# ----------------------------------------------------------------------
# Public sampling entry points
# ----------------------------------------------------------------------
def parallel_prr_collection(
    graph: DiGraph,
    seeds,
    k: int,
    count: int,
    master_seed: int = 0,
    workers: int | None = None,
) -> PRRArena:
    """Sample ``count`` PRR-graphs into one arena across the runtime.

    The collection is a pure function of ``(count, master_seed)`` —
    independent of worker count, including the serial fallback.  The
    result is a :class:`PRRArena`; index it for :class:`PRRGraph` views
    or feed it directly to the vectorized estimators.
    """
    seed_set = frozenset(int(s) for s in seeds)
    jobs = _chunk_jobs(count, master_seed)
    if not jobs:
        return PRRArena(graph.n)
    parts = _run_chunks(
        graph, "prr", jobs, (tuple(seed_set), k), _resolve_workers(workers)
    )
    return PRRArena.from_payloads([(graph.n, *arrays) for arrays in parts])


def parallel_critical_sets(
    graph: DiGraph,
    seeds,
    count: int,
    master_seed: int = 0,
    workers: int | None = None,
) -> List[FrozenSet[int]]:
    """Sample ``count`` critical sets (the PRR-Boost-LB payload) in parallel."""
    seed_set = frozenset(int(s) for s in seeds)
    jobs = _chunk_jobs(count, master_seed)
    parts = _run_chunks(
        graph, "critical", jobs, (tuple(seed_set),), _resolve_workers(workers)
    )
    out: List[FrozenSet[int]] = []
    for _status, counts, values, _explored in parts:
        out.extend(csr_to_frozensets(counts, values))
    return out


def parallel_rr_csr(
    graph: DiGraph,
    count: int,
    master_seed: int = 0,
    workers: int | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample ``count`` RR-sets as one ``(counts, values)`` CSR.

    The shape :meth:`repro.engine.coverage.CoverageIndex.extend_csr`
    ingests — the parallel backend of
    :meth:`repro.im.rr.RRSampler.sample_into`.
    """
    jobs = _chunk_jobs(count, master_seed)
    if not jobs:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    parts = _run_chunks(graph, "rr", jobs, (), _resolve_workers(workers))
    return (
        np.concatenate([p[0] for p in parts]),
        np.concatenate([p[1] for p in parts]),
    )


def parallel_critical_csr(
    graph: DiGraph,
    seeds,
    count: int,
    master_seed: int = 0,
    workers: int | None = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """``count`` critical sets as ``(status_codes, counts, values,
    explored)`` — the array-shaped sibling of
    :func:`parallel_critical_sets` used by the samplers."""
    seed_set = frozenset(int(s) for s in seeds)
    jobs = _chunk_jobs(count, master_seed)
    if not jobs:
        return (
            np.empty(0, dtype=np.int8),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    parts = _run_chunks(
        graph, "critical", jobs, (tuple(seed_set),), _resolve_workers(workers)
    )
    return (
        np.concatenate([p[0] for p in parts]),
        np.concatenate([p[1] for p in parts]),
        np.concatenate([p[2] for p in parts]),
        np.concatenate([p[3] for p in parts]),
    )


def parallel_prr_payloads(
    graph: DiGraph,
    seeds,
    k: int,
    count: int,
    master_seed: int = 0,
    workers: int | None = None,
) -> List[tuple]:
    """Chunk-ordered arena payloads for ``count`` PRR-graphs — the form
    :meth:`repro.core.boost.PRRSampler.sample_into` merges incrementally."""
    seed_set = frozenset(int(s) for s in seeds)
    jobs = _chunk_jobs(count, master_seed)
    parts = _run_chunks(
        graph, "prr", jobs, (tuple(seed_set), k), _resolve_workers(workers)
    )
    return [(graph.n, *arrays) for arrays in parts]


# ----------------------------------------------------------------------
# Legacy per-call pool path (benchmark baseline)
# ----------------------------------------------------------------------
_LEGACY_CHUNK = 64

_worker_graph: Optional[DiGraph] = None
_worker_seeds: Optional[frozenset] = None
_worker_k: int = 0


def _init_worker(graph: DiGraph, seeds: frozenset, k: int) -> None:
    global _worker_graph, _worker_seeds, _worker_k
    _worker_graph = graph
    _worker_seeds = seeds
    _worker_k = k
    SamplingEngine.for_graph(graph)


def _worker_sample_graphs(args: Tuple[int, int, int]) -> Tuple[int, tuple]:
    chunk_id, seed, count = args
    rng = np.random.default_rng(seed)
    arena = sample_prr_arena(_worker_graph, _worker_seeds, _worker_k, rng, count)
    return chunk_id, arena.payload()


def _worker_sample_critical(
    args: Tuple[int, int, int]
) -> Tuple[int, np.ndarray, np.ndarray]:
    chunk_id, seed, count = args
    rng = np.random.default_rng(seed)
    engine = SamplingEngine.for_graph(_worker_graph)
    counts = np.empty(count, dtype=np.int64)
    members: List[np.ndarray] = []
    for i in range(count):
        _status, crit, _explored = engine.critical_members(_worker_seeds, rng)
        counts[i] = crit.size
        members.append(crit)
    values = (
        np.concatenate(members).astype(np.int32, copy=False)
        if members
        else np.empty(0, dtype=np.int32)
    )
    return chunk_id, counts, values


def _legacy_chunk_jobs(count: int, master_seed: int) -> List[Tuple[int, int, int]]:
    num_chunks = math.ceil(count / _LEGACY_CHUNK)
    base, extra = divmod(count, num_chunks)
    sizes = [base + (1 if i < extra else 0) for i in range(num_chunks)]
    seq = np.random.SeedSequence(master_seed)
    seeds = [int(s.generate_state(1)[0]) for s in seq.spawn(num_chunks)]
    return [
        (cid, seed, size)
        for cid, (seed, size) in enumerate(zip(seeds, sizes))
        if size > 0
    ]


def legacy_parallel_prr_collection(
    graph: DiGraph,
    seeds,
    k: int,
    count: int,
    master_seed: int = 0,
    workers: int | None = None,
) -> PRRArena:
    """The PR-2 parallel path, preserved verbatim as a baseline: a fork
    pool spun up per call (graph pickled to every worker via initargs),
    single-sample chunk loops, pickled payload results."""
    seed_set = frozenset(int(s) for s in seeds)
    workers = _resolve_workers(workers)
    if workers <= 1 or count < _LEGACY_CHUNK or not fork_available():
        rng = np.random.default_rng(master_seed)
        return sample_prr_arena(graph, seed_set, k, rng, count)
    jobs = _legacy_chunk_jobs(count, master_seed)
    ctx = mp.get_context("fork")
    with ctx.Pool(
        workers, initializer=_init_worker, initargs=(graph, seed_set, k)
    ) as pool:
        parts = list(pool.imap_unordered(_worker_sample_graphs, jobs))
    parts.sort(key=lambda part: part[0])
    return PRRArena.from_payloads([payload for _cid, payload in parts])


def legacy_parallel_critical_sets(
    graph: DiGraph,
    seeds,
    count: int,
    master_seed: int = 0,
    workers: int | None = None,
) -> List[FrozenSet[int]]:
    """The PR-2 parallel critical-set path (see
    :func:`legacy_parallel_prr_collection`)."""
    seed_set = frozenset(int(s) for s in seeds)
    workers = _resolve_workers(workers)
    if workers <= 1 or count < _LEGACY_CHUNK or not fork_available():
        rng = np.random.default_rng(master_seed)
        engine = SamplingEngine.for_graph(graph)
        return [
            critical
            for _status, critical, _explored in (
                engine.critical_set(seed_set, rng) for _ in range(count)
            )
        ]
    jobs = _legacy_chunk_jobs(count, master_seed)
    ctx = mp.get_context("fork")
    with ctx.Pool(
        workers, initializer=_init_worker, initargs=(graph, seed_set, 1)
    ) as pool:
        parts = list(pool.imap_unordered(_worker_sample_critical, jobs))
    parts.sort(key=lambda part: part[0])
    out: List[FrozenSet[int]] = []
    for _cid, counts, values in parts:
        out.extend(csr_to_frozensets(counts, values))
    return out
