"""Parallel sampling on a persistent zero-copy shared-memory runtime.

The paper parallelizes PRR-graph generation with OpenMP over eight
threads.  The Python analogue here is a process-based runtime built for
repeated use:

* **Zero-copy graph publication** — the graph's CSR arrays and edge
  probabilities are written once into a single
  :mod:`multiprocessing.shared_memory` segment
  (:class:`SharedGraphRuntime`); workers attach by name and build their
  :class:`~repro.engine.SamplingEngine` over read-only views, so neither
  pool startup nor any task pays a per-worker graph pickle.
* **Persistent pull-scheduled workers** — one pool per graph survives
  across calls (IMM doubling rounds, repeated ``prr_boost`` runs, …).
  Tasks are small sample chunks on one shared queue; an idle worker
  steals the next chunk the moment it finishes, so cheap chunks
  (activated/hopeless roots) never leave a worker idling behind a static
  partition.
* **Tag-multiplexed submissions** — every dispatch gets a runtime-unique
  tag and a collector thread demultiplexes results per tag
  (:meth:`SharedGraphRuntime.submit` / :meth:`~SharedGraphRuntime.gather`),
  so concurrent callers — the serving tier's overlapped ``run_many``
  lanes — pipeline independent queries' sampling chunks onto one pool
  instead of taking turns.
* **Raw-buffer results** — workers sample with the lane kernels and ship
  flat arrays back (:class:`~repro.core.prr.PRRArena` payloads, critical
  or RR CSRs).  Large results travel through a per-result shared-memory
  segment — bytes, not pickled object graphs; small ones ride the result
  queue directly, which is cheaper than a segment round-trip.

Determinism: chunking is a pure function of ``count`` and each chunk's
RNG seed is spawned from its chunk id, so a collection depends only on
``(count, master_seed)`` — not on worker count, scheduling, or whether
the serial fallback ran.  The serial fallback (``workers <= 1``, or a
platform without ``fork``) iterates the same chunks in-process without
touching any pool machinery.

The pre-runtime implementation (fork pool per call, pickled graph
initargs, pickled payload results, single-sample chunk loops) is kept as
``legacy_parallel_prr_collection`` / ``legacy_parallel_critical_sets`` —
the baseline ``benchmarks/bench_lanes.py`` measures the runtime against.
"""

from __future__ import annotations

import atexit
import math
import multiprocessing as mp
import os
import threading
import time
from multiprocessing import shared_memory
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..engine import SamplingEngine
from ..engine.coverage import csr_to_frozensets
from ..graphs.digraph import CSRView, DiGraph
from .prr import PRRArena, sample_prr_arena, sample_prr_lanes

__all__ = [
    "parallel_prr_collection",
    "parallel_critical_sets",
    "parallel_rr_csr",
    "SharedGraphRuntime",
    "get_runtime",
    "shutdown_runtime",
    "shutdown_runtime_for",
    "runtime_is_alive",
    "fork_available",
    "resolve_sampler_workers",
    "PARALLEL_MIN_SAMPLES",
    "legacy_parallel_prr_collection",
    "legacy_parallel_critical_sets",
]

# Samples per streamed chunk: small enough that stragglers rebalance,
# large enough that per-chunk overhead (seed spawn + one result ship)
# stays negligible.  Chunks are lane batches, so CHUNK_SIZE is a multiple
# of the lane width.
CHUNK_SIZE = 256

# Results below this many bytes ride the queue; larger ones go through a
# per-result shared-memory segment.
_SHM_RESULT_MIN = 1 << 18


# Below this many samples a sampler dispatch stays in-process: a chunk
# queue round-trip costs more than two lane batches.
PARALLEL_MIN_SAMPLES = 512


def fork_available() -> bool:
    """Whether the platform supports the fork start method."""
    return "fork" in mp.get_all_start_methods()


def resolve_sampler_workers(workers: int | None) -> int:
    """Effective worker count for a sampler: explicit value, or 1 (serial)
    when unset or the platform lacks fork."""
    if workers is None or workers <= 1 or not fork_available():
        return 1
    return int(workers)


def _resolve_workers(workers: int | None) -> int:
    return workers or min(os.cpu_count() or 1, 8)


def _chunk_jobs(count: int, master_seed: int) -> List[Tuple[int, int, int]]:
    """``(chunk_id, seed, size)`` jobs of at most :data:`CHUNK_SIZE` samples.

    The chunking is a pure function of ``count`` (never of the worker
    count), and each chunk's RNG seed is spawned from its chunk id — so
    the merged collection depends only on ``(count, master_seed)``, no
    matter how many workers ran or in which order chunks finished.
    """
    if count <= 0:
        return []
    num_chunks = math.ceil(count / CHUNK_SIZE)
    base, extra = divmod(count, num_chunks)
    sizes = [base + (1 if i < extra else 0) for i in range(num_chunks)]
    seq = np.random.SeedSequence(master_seed)
    seeds = [int(s.generate_state(1)[0]) for s in seq.spawn(num_chunks)]
    return [
        (cid, seed, size)
        for cid, (seed, size) in enumerate(zip(seeds, sizes))
        if size > 0
    ]


# ----------------------------------------------------------------------
# Shared-memory plumbing
# ----------------------------------------------------------------------
# Resource-tracker note: the runtime requires fork, so every process
# shares the master's tracker.  CPython's SharedMemory registers a name
# on open (a set add, idempotent across attachers) and unregisters it in
# unlink() — each segment here is unlinked exactly once by its consumer,
# so the ledger balances without any manual (un)registration.

_ArrayTable = List[Tuple[str, str, tuple, int]]


def _publish_arrays(
    arrays: Dict[str, np.ndarray]
) -> Tuple[shared_memory.SharedMemory, _ArrayTable]:
    """Copy ``arrays`` into one fresh shared-memory segment.

    Returns the segment plus an offset table (name, dtype, shape, offset)
    that :func:`_attach_arrays` uses to rebuild zero-copy views.
    """
    table: _ArrayTable = []
    offset = 0
    contiguous = {}
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        contiguous[name] = arr
        table.append((name, arr.dtype.str, arr.shape, offset))
        offset += arr.nbytes
        offset = (offset + 63) & ~63  # 64-byte alignment
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for (name, _dt, _shape, off), arr in zip(table, contiguous.values()):
        if arr.nbytes:
            dst = np.frombuffer(
                shm.buf, dtype=arr.dtype, count=arr.size, offset=off
            )
            dst[:] = arr.ravel()
    return shm, table


def _attach_arrays(
    shm: shared_memory.SharedMemory, table: _ArrayTable
) -> Dict[str, np.ndarray]:
    """Zero-copy read-only views of a published segment."""
    out = {}
    for name, dtype_str, shape, offset in table:
        dt = np.dtype(dtype_str)
        size = int(np.prod(shape, dtype=np.int64))
        arr = np.frombuffer(shm.buf, dtype=dt, count=size, offset=offset)
        arr = arr.reshape(shape)
        arr.flags.writeable = False
        out[name] = arr
    return out


def _ship_result(arrays: Sequence[np.ndarray]):
    """Package worker output: queue-inline when small, else one shared
    segment of raw buffers."""
    arrays = [np.ascontiguousarray(a) for a in arrays]
    total = sum(a.nbytes for a in arrays)
    if total < _SHM_RESULT_MIN:
        return ("q", arrays)
    named = {str(i): a for i, a in enumerate(arrays)}
    shm, table = _publish_arrays(named)
    shm.close()  # the master unlinks after copying out
    return ("shm", shm.name, table)


def _receive_result(msg) -> List[np.ndarray]:
    """Unpack :func:`_ship_result` output (copies out of shared memory)."""
    if msg[0] == "q":
        return list(msg[1])
    _tag, name, table = msg
    shm = shared_memory.SharedMemory(name=name)  # attach: not re-tracked
    views = _attach_arrays(shm, table)
    out = [np.array(views[str(i)], copy=True) for i in range(len(table))]
    del views
    shm.close()
    shm.unlink()
    return out


class _SharedGraphView:
    """Duck-typed :class:`DiGraph` over shared-memory array views.

    Exposes exactly what :class:`~repro.engine.SamplingEngine` and the
    samplers consume (``n``/``m``, the two CSR views, the flat edge
    arrays) without ever materializing a private copy of the graph.
    """

    def __init__(self, n: int, m: int, shm, arrays: Dict[str, np.ndarray]):
        self.n = n
        self.m = m
        self._shm = shm  # keeps the segment mapped
        self._a = arrays
        self._engine_cache = None

    def out_csr(self) -> CSRView:
        a = self._a
        return CSRView(
            a["out_indptr"], a["out_nodes"], a["out_p"], a["out_pp"], a["out_eid"]
        )

    def in_csr(self) -> CSRView:
        a = self._a
        return CSRView(
            a["in_indptr"], a["in_nodes"], a["in_p"], a["in_pp"], a["in_eid"]
        )

    def edge_arrays(self):
        a = self._a
        return a["src"], a["dst"], a["p"], a["pp"]


def _graph_arrays(graph: DiGraph) -> Dict[str, np.ndarray]:
    out = graph.out_csr()
    inc = graph.in_csr()
    src, dst, p, pp = graph.edge_arrays()
    return {
        "out_indptr": out.indptr, "out_nodes": out.nodes, "out_p": out.p,
        "out_pp": out.pp, "out_eid": out.eid,
        "in_indptr": inc.indptr, "in_nodes": inc.nodes, "in_p": inc.p,
        "in_pp": inc.pp, "in_eid": inc.eid,
        "src": src, "dst": dst, "p": p, "pp": pp,
    }


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------
def _run_task(graph, kind: str, seed: int, size: int, params) -> List[np.ndarray]:
    """Sample one chunk on ``graph`` (a view in workers, the real graph in
    the serial fallback) and return the result as a flat array list."""
    rng = np.random.default_rng(seed)
    if kind == "prr":
        seed_set, k = params
        arena = sample_prr_lanes(graph, frozenset(seed_set), k, rng, size)
        return list(arena.payload()[1:])  # n is implicit
    if kind == "critical":
        (seed_set,) = params
        engine = SamplingEngine.for_graph(graph)
        status, counts, values, explored = engine.critical_lane_csr(
            frozenset(seed_set), rng, size
        )
        return [status, counts, values, explored]
    if kind == "rr":
        engine = SamplingEngine.for_graph(graph)
        counts, values = engine.rr_lane_csr(rng, size)
        return [counts, values]
    raise ValueError(f"unknown task kind: {kind}")


def _worker_main(shm_name, table, n, m, task_queue, result_queue) -> None:
    shm = shared_memory.SharedMemory(name=shm_name)  # attach: not re-tracked
    view = _SharedGraphView(n, m, shm, _attach_arrays(shm, table))
    SamplingEngine.for_graph(view)  # warm the engine once
    while True:
        task = task_queue.get()
        if task is None:
            break
        task_id, kind, seed, size, params = task
        try:
            msg = _ship_result(_run_task(view, kind, seed, size, params))
            result_queue.put((task_id, True, msg))
        except Exception as exc:  # surface, don't hang the master
            result_queue.put((task_id, False, repr(exc)))
    # Flush pending queue feeds, then exit without interpreter teardown:
    # the engine holds views into the shared segment, and unwinding them
    # through GC trips BufferError in SharedMemory.__del__.
    result_queue.close()
    result_queue.join_thread()
    os._exit(0)


# ----------------------------------------------------------------------
# Runtime
# ----------------------------------------------------------------------
class SharedGraphRuntime:
    """A persistent worker pool bound to one graph's shared arrays.

    Construction publishes the graph once and forks ``workers``
    long-lived processes.  Work is **tag-multiplexed**: every submission
    (:meth:`submit`) gets a runtime-unique tag, its chunk tasks carry
    ``(tag, chunk_id)`` ids on the one shared task queue, and a collector
    thread demultiplexes the result queue back into per-tag stashes.
    That is what lets several queries' sampling phases share the worker
    pool *concurrently* — the serving tier's overlapped ``run_many``
    submits every query's chunks up front (each from its own lane
    thread) and each lane blocks only on :meth:`gather` of its own tag,
    running its selection phase the moment its samples are complete
    while other queries' chunks still occupy the workers.

    :meth:`run` is the one-shot form (submit + gather) used by the
    per-collection entry points below; it is safe to call from multiple
    threads at once.  Reused across calls via :func:`get_runtime`;
    :meth:`shutdown` (or interpreter exit) releases processes and shared
    memory.

    Determinism is untouched by the multiplexing: chunking stays a pure
    function of ``count`` and each chunk's RNG seed of its chunk id, so
    a collection depends only on ``(count, master_seed)`` no matter how
    many tags interleaved on the pool.
    """

    def __init__(self, graph: DiGraph, workers: int) -> None:
        if not fork_available():
            raise RuntimeError("SharedGraphRuntime requires the fork start method")
        self.graph = graph
        self.graph_version = getattr(graph, "version", 0)
        self.workers = int(workers)
        self._ctx = mp.get_context("fork")
        self._shm, table = _publish_arrays(_graph_arrays(graph))
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._procs = [
            self._ctx.Process(
                target=_worker_main,
                args=(
                    self._shm.name, table, graph.n, graph.m,
                    self._tasks, self._results,
                ),
                daemon=True,
            )
            for _ in range(self.workers)
        ]
        for proc in self._procs:
            proc.start()
        self._closed = False
        # Tag-multiplexing state, all guarded by the condition's lock.
        self._cv = threading.Condition()
        self._next_tag = 0
        self._pending: Dict[int, set] = {}      # tag -> outstanding cids
        self._order: Dict[int, List[int]] = {}  # tag -> submission cid order
        self._stash: Dict[int, Dict[int, List[np.ndarray]]] = {}
        self._failure: Optional[str] = None
        self._collector = threading.Thread(
            target=self._collect_loop, name="runtime-collector", daemon=True
        )
        self._collector.start()

    # ------------------------------------------------------------------
    # Tagged submission API
    # ------------------------------------------------------------------
    def submit(
        self, kind: str, jobs: Sequence[Tuple[int, int, int]], params: tuple
    ) -> int:
        """Enqueue ``jobs`` (``(chunk_id, seed, size)``) under a fresh tag.

        Non-blocking: returns the tag immediately; workers start pulling
        the chunks as soon as they go idle.  Thread-safe.
        """
        with self._cv:
            if self._closed:
                raise RuntimeError("runtime is shut down")
            if self._failure is not None:
                raise RuntimeError(self._failure)
            tag = self._next_tag
            self._next_tag += 1
            self._pending[tag] = {cid for cid, _seed, _size in jobs}
            self._order[tag] = [cid for cid, _seed, _size in jobs]
            self._stash[tag] = {}
        for cid, seed, size in jobs:
            self._tasks.put(((tag, cid), kind, seed, size, params))
        return tag

    def gather(self, tag: int) -> List[List[np.ndarray]]:
        """Block until every chunk of ``tag`` has arrived; return their
        results in submission order.  Thread-safe; each tag may be
        gathered exactly once.  A worker failure tears the runtime down
        before raising (in-flight chunks of *every* tag are lost with the
        pool)."""
        failure = None
        with self._cv:
            while True:
                if self._failure is not None:
                    failure = self._failure
                    break
                pending = self._pending.get(tag)
                if pending is None:
                    raise KeyError(f"unknown or already-gathered tag {tag}")
                if not pending:
                    del self._pending[tag]
                    order = self._order.pop(tag)
                    chunks = self._stash.pop(tag)
                    return [chunks[cid] for cid in order]
                self._cv.wait(timeout=0.5)
        self.shutdown()
        raise RuntimeError(failure)

    def run(
        self, kind: str, jobs: Sequence[Tuple[int, int, int]], params: tuple
    ) -> List[List[np.ndarray]]:
        """Execute ``jobs`` and return their results in submission order
        (one-shot :meth:`submit` + :meth:`gather`)."""
        return self.gather(self.submit(kind, jobs, params))

    # ------------------------------------------------------------------
    # Collector
    # ------------------------------------------------------------------
    def _collect_loop(self) -> None:
        """Drain the result queue into the per-tag stashes (single reader).

        Runs until shutdown.  Sets :attr:`_failure` — waking every
        gatherer — on a failed task or a dead worker with work
        outstanding; result payloads are copied out of (and their
        segments unlinked from) shared memory here, so abandoned tags
        never leak segments.
        """
        while not self._closed:
            try:
                (tag, cid), ok, msg = self._results.get(timeout=0.5)
            except Exception:
                with self._cv:
                    if self._failure is not None or not self._pending:
                        continue
                    alive = sum(p.is_alive() for p in self._procs)
                    if alive < self.workers:
                        self._failure = (
                            f"parallel runtime lost workers "
                            f"({alive}/{self.workers} alive)"
                        )
                        self._cv.notify_all()
                continue
            if not ok:
                with self._cv:
                    self._failure = f"worker task ({tag}, {cid}) failed: {msg}"
                    self._cv.notify_all()
                continue
            try:
                arrays = _receive_result(msg)
            except Exception as exc:  # pragma: no cover - defensive
                with self._cv:
                    self._failure = f"result unpack failed: {exc!r}"
                    self._cv.notify_all()
                continue
            with self._cv:
                if tag in self._pending:
                    self._stash[tag][cid] = arrays
                    self._pending[tag].discard(cid)
                    if not self._pending[tag]:
                        self._cv.notify_all()
                # else: tag abandoned (gather raised) — arrays dropped,
                # segment already unlinked by _receive_result.

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        with self._cv:
            if self._failure is None:
                self._failure = "runtime is shut down"
            self._cv.notify_all()
        self._collector.join(timeout=5)
        for _ in self._procs:
            try:
                self._tasks.put(None)
            except Exception:
                pass
        # Drain in-flight results *while* workers wind down: a worker
        # mid-put must not block forever against a full pipe, and every
        # abandoned result's shared segment needs unlinking.  Bounded, and
        # tolerant of a truncated message from a dying worker.
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            try:
                _tid, ok, msg = self._results.get(timeout=0.25)
            except Exception:
                if not any(p.is_alive() for p in self._procs):
                    break
                continue
            if ok:
                try:
                    _receive_result(msg)
                except Exception:  # pragma: no cover - defensive
                    pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
        self._tasks.close()
        self._results.close()
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


_runtime: Optional[SharedGraphRuntime] = None
_RUNTIME_LOCK = threading.Lock()


def get_runtime(graph: DiGraph, workers: int) -> SharedGraphRuntime:
    """The cached runtime for ``graph`` (created/replaced on demand).

    One runtime is kept alive at a time — repeated calls with the same
    graph (at its current :attr:`~repro.graphs.DiGraph.version`) and a
    compatible worker count reuse the warm pool, which is what makes
    multi-round algorithms (IMM doubling, repeated boosts) pay pool
    startup once per graph instead of once per call.  A version bump
    (in-place probability update) retires the pool: its published
    segment holds the pre-mutation arrays.  Thread-safe — overlap lanes
    race here on first parallel dispatch.
    """
    global _runtime
    with _RUNTIME_LOCK:
        if (
            _runtime is not None
            and not _runtime._closed
            and _runtime.graph is graph
            and _runtime.graph_version == getattr(graph, "version", 0)
            and _runtime.workers >= workers
        ):
            return _runtime
        if _runtime is not None:
            _runtime.shutdown()
        _runtime = SharedGraphRuntime(graph, workers)
        return _runtime


def shutdown_runtime() -> None:
    """Tear down the cached runtime (idempotent; also runs at exit)."""
    global _runtime
    if _runtime is not None:
        _runtime.shutdown()
        _runtime = None


def shutdown_runtime_for(graph) -> bool:
    """Tear down the cached runtime iff it is bound to ``graph``.

    The hook :meth:`repro.api.Session.close` uses to release worker
    processes and shared-memory segments it is responsible for without
    disturbing a runtime some other graph's caller still owns.  Returns
    whether a runtime was shut down.
    """
    global _runtime
    if _runtime is not None and _runtime.graph is graph:
        shutdown_runtime()
        return True
    return False


def runtime_is_alive(graph) -> bool:
    """Whether the cached runtime exists, is open, and serves ``graph``."""
    return _runtime is not None and not _runtime._closed and _runtime.graph is graph


atexit.register(shutdown_runtime)


def _run_chunks(
    graph: DiGraph,
    kind: str,
    jobs: Sequence[Tuple[int, int, int]],
    params: tuple,
    workers: int,
) -> List[List[np.ndarray]]:
    """Run chunk jobs on the shared runtime, or serially in-process when
    ``workers <= 1`` / no fork — same chunks, same seeds, same results,
    and the serial path never touches pool or shared-memory machinery."""
    if workers > 1 and fork_available() and len(jobs) > 1:
        return get_runtime(graph, workers).run(kind, jobs, params)
    return [
        _run_task(graph, kind, seed, size, params) for _cid, seed, size in jobs
    ]


# ----------------------------------------------------------------------
# Public sampling entry points
# ----------------------------------------------------------------------
def parallel_prr_collection(
    graph: DiGraph,
    seeds,
    k: int,
    count: int,
    master_seed: int = 0,
    workers: int | None = None,
) -> PRRArena:
    """Sample ``count`` PRR-graphs into one arena across the runtime.

    The collection is a pure function of ``(count, master_seed)`` —
    independent of worker count, including the serial fallback.  The
    result is a :class:`PRRArena`; index it for :class:`PRRGraph` views
    or feed it directly to the vectorized estimators.
    """
    seed_set = frozenset(int(s) for s in seeds)
    jobs = _chunk_jobs(count, master_seed)
    if not jobs:
        return PRRArena(graph.n)
    parts = _run_chunks(
        graph, "prr", jobs, (tuple(seed_set), k), _resolve_workers(workers)
    )
    return PRRArena.from_payloads([(graph.n, *arrays) for arrays in parts])


def parallel_critical_sets(
    graph: DiGraph,
    seeds,
    count: int,
    master_seed: int = 0,
    workers: int | None = None,
) -> List[FrozenSet[int]]:
    """Sample ``count`` critical sets (the PRR-Boost-LB payload) in parallel."""
    seed_set = frozenset(int(s) for s in seeds)
    jobs = _chunk_jobs(count, master_seed)
    parts = _run_chunks(
        graph, "critical", jobs, (tuple(seed_set),), _resolve_workers(workers)
    )
    out: List[FrozenSet[int]] = []
    for _status, counts, values, _explored in parts:
        out.extend(csr_to_frozensets(counts, values))
    return out


def parallel_rr_csr(
    graph: DiGraph,
    count: int,
    master_seed: int = 0,
    workers: int | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample ``count`` RR-sets as one ``(counts, values)`` CSR.

    The shape :meth:`repro.engine.coverage.CoverageIndex.extend_csr`
    ingests — the parallel backend of
    :meth:`repro.im.rr.RRSampler.sample_into`.
    """
    jobs = _chunk_jobs(count, master_seed)
    if not jobs:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    parts = _run_chunks(graph, "rr", jobs, (), _resolve_workers(workers))
    return (
        np.concatenate([p[0] for p in parts]),
        np.concatenate([p[1] for p in parts]),
    )


def parallel_critical_csr(
    graph: DiGraph,
    seeds,
    count: int,
    master_seed: int = 0,
    workers: int | None = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """``count`` critical sets as ``(status_codes, counts, values,
    explored)`` — the array-shaped sibling of
    :func:`parallel_critical_sets` used by the samplers."""
    seed_set = frozenset(int(s) for s in seeds)
    jobs = _chunk_jobs(count, master_seed)
    if not jobs:
        return (
            np.empty(0, dtype=np.int8),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    parts = _run_chunks(
        graph, "critical", jobs, (tuple(seed_set),), _resolve_workers(workers)
    )
    return (
        np.concatenate([p[0] for p in parts]),
        np.concatenate([p[1] for p in parts]),
        np.concatenate([p[2] for p in parts]),
        np.concatenate([p[3] for p in parts]),
    )


def parallel_prr_payloads(
    graph: DiGraph,
    seeds,
    k: int,
    count: int,
    master_seed: int = 0,
    workers: int | None = None,
) -> List[tuple]:
    """Chunk-ordered arena payloads for ``count`` PRR-graphs — the form
    :meth:`repro.core.boost.PRRSampler.sample_into` merges incrementally."""
    seed_set = frozenset(int(s) for s in seeds)
    jobs = _chunk_jobs(count, master_seed)
    parts = _run_chunks(
        graph, "prr", jobs, (tuple(seed_set), k), _resolve_workers(workers)
    )
    return [(graph.n, *arrays) for arrays in parts]


# ----------------------------------------------------------------------
# Legacy per-call pool path (benchmark baseline)
# ----------------------------------------------------------------------
_LEGACY_CHUNK = 64

_worker_graph: Optional[DiGraph] = None
_worker_seeds: Optional[frozenset] = None
_worker_k: int = 0


def _init_worker(graph: DiGraph, seeds: frozenset, k: int) -> None:
    global _worker_graph, _worker_seeds, _worker_k
    _worker_graph = graph
    _worker_seeds = seeds
    _worker_k = k
    SamplingEngine.for_graph(graph)


def _worker_sample_graphs(args: Tuple[int, int, int]) -> Tuple[int, tuple]:
    chunk_id, seed, count = args
    rng = np.random.default_rng(seed)
    arena = sample_prr_arena(_worker_graph, _worker_seeds, _worker_k, rng, count)
    return chunk_id, arena.payload()


def _worker_sample_critical(
    args: Tuple[int, int, int]
) -> Tuple[int, np.ndarray, np.ndarray]:
    chunk_id, seed, count = args
    rng = np.random.default_rng(seed)
    engine = SamplingEngine.for_graph(_worker_graph)
    counts = np.empty(count, dtype=np.int64)
    members: List[np.ndarray] = []
    for i in range(count):
        _status, crit, _explored = engine.critical_members(_worker_seeds, rng)
        counts[i] = crit.size
        members.append(crit)
    values = (
        np.concatenate(members).astype(np.int32, copy=False)
        if members
        else np.empty(0, dtype=np.int32)
    )
    return chunk_id, counts, values


def _legacy_chunk_jobs(count: int, master_seed: int) -> List[Tuple[int, int, int]]:
    num_chunks = math.ceil(count / _LEGACY_CHUNK)
    base, extra = divmod(count, num_chunks)
    sizes = [base + (1 if i < extra else 0) for i in range(num_chunks)]
    seq = np.random.SeedSequence(master_seed)
    seeds = [int(s.generate_state(1)[0]) for s in seq.spawn(num_chunks)]
    return [
        (cid, seed, size)
        for cid, (seed, size) in enumerate(zip(seeds, sizes))
        if size > 0
    ]


def legacy_parallel_prr_collection(
    graph: DiGraph,
    seeds,
    k: int,
    count: int,
    master_seed: int = 0,
    workers: int | None = None,
) -> PRRArena:
    """The PR-2 parallel path, preserved verbatim as a baseline: a fork
    pool spun up per call (graph pickled to every worker via initargs),
    single-sample chunk loops, pickled payload results."""
    seed_set = frozenset(int(s) for s in seeds)
    workers = _resolve_workers(workers)
    if workers <= 1 or count < _LEGACY_CHUNK or not fork_available():
        rng = np.random.default_rng(master_seed)
        return sample_prr_arena(graph, seed_set, k, rng, count)
    jobs = _legacy_chunk_jobs(count, master_seed)
    ctx = mp.get_context("fork")
    with ctx.Pool(
        workers, initializer=_init_worker, initargs=(graph, seed_set, k)
    ) as pool:
        parts = list(pool.imap_unordered(_worker_sample_graphs, jobs))
    parts.sort(key=lambda part: part[0])
    return PRRArena.from_payloads([payload for _cid, payload in parts])


def legacy_parallel_critical_sets(
    graph: DiGraph,
    seeds,
    count: int,
    master_seed: int = 0,
    workers: int | None = None,
) -> List[FrozenSet[int]]:
    """The PR-2 parallel critical-set path (see
    :func:`legacy_parallel_prr_collection`)."""
    seed_set = frozenset(int(s) for s in seeds)
    workers = _resolve_workers(workers)
    if workers <= 1 or count < _LEGACY_CHUNK or not fork_available():
        rng = np.random.default_rng(master_seed)
        engine = SamplingEngine.for_graph(graph)
        return [
            critical
            for _status, critical, _explored in (
                engine.critical_set(seed_set, rng) for _ in range(count)
            )
        ]
    jobs = _legacy_chunk_jobs(count, master_seed)
    ctx = mp.get_context("fork")
    with ctx.Pool(
        workers, initializer=_init_worker, initargs=(graph, seed_set, 1)
    ) as pool:
        parts = list(pool.imap_unordered(_worker_sample_critical, jobs))
    parts.sort(key=lambda part: part[0])
    out: List[FrozenSet[int]] = []
    for _cid, counts, values in parts:
        out.extend(csr_to_frozensets(counts, values))
    return out
