"""Parallel PRR-graph generation.

The paper parallelizes PRR-graph generation with OpenMP over eight
threads.  The Python analogue uses a process pool (fork start method):
each worker owns a copy of the graph and an independently-seeded
generator, and streams back sampled PRR-graphs (or critical sets).

Because PRR-graphs are independent samples, the only coordination needed
is seeding: workers derive child seeds from a ``SeedSequence`` spawn, so a
parallel run is reproducible given the master seed (though it yields a
*different* — equally valid — sample than a sequential run).
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import FrozenSet, List, Optional, Tuple

import numpy as np

from ..engine import SamplingEngine
from ..graphs.digraph import DiGraph
from .prr import PRRGraph, sample_critical_batch, sample_prr_batch

__all__ = ["parallel_prr_collection", "parallel_critical_sets"]

# Globals initialised once per worker process (fork-friendly pattern).
_worker_graph: Optional[DiGraph] = None
_worker_seeds: Optional[frozenset] = None
_worker_k: int = 0


def _init_worker(graph: DiGraph, seeds: frozenset, k: int) -> None:
    global _worker_graph, _worker_seeds, _worker_k
    _worker_graph = graph
    _worker_seeds = seeds
    _worker_k = k
    # Warm the engine once per worker; every streamed batch reuses it.
    SamplingEngine.for_graph(graph)


def _worker_sample_graphs(args: Tuple[int, int]) -> List[PRRGraph]:
    seed, count = args
    rng = np.random.default_rng(seed)
    return sample_prr_batch(_worker_graph, _worker_seeds, _worker_k, rng, count)


def _worker_sample_critical(args: Tuple[int, int]) -> List[FrozenSet[int]]:
    seed, count = args
    rng = np.random.default_rng(seed)
    return [
        critical
        for _status, critical, _explored in sample_critical_batch(
            _worker_graph, _worker_seeds, rng, count
        )
    ]


def _chunks(total: int, workers: int) -> List[int]:
    base, extra = divmod(total, workers)
    return [base + (1 if i < extra else 0) for i in range(workers)]


def parallel_prr_collection(
    graph: DiGraph,
    seeds,
    k: int,
    count: int,
    master_seed: int = 0,
    workers: int | None = None,
) -> List[PRRGraph]:
    """Sample ``count`` PRR-graphs across a process pool.

    Falls back to sequential generation when ``workers`` resolves to 1 or
    the platform lacks fork (keeps tests portable).
    """
    seed_set = frozenset(int(s) for s in seeds)
    workers = workers or min(os.cpu_count() or 1, 8)
    if workers <= 1 or count < 64:
        rng = np.random.default_rng(master_seed)
        return sample_prr_batch(graph, seed_set, k, rng, count)
    seq = np.random.SeedSequence(master_seed)
    child_seeds = [int(s.generate_state(1)[0]) for s in seq.spawn(workers)]
    jobs = list(zip(child_seeds, _chunks(count, workers)))
    ctx = mp.get_context("fork")
    with ctx.Pool(
        workers, initializer=_init_worker, initargs=(graph, seed_set, k)
    ) as pool:
        parts = pool.map(_worker_sample_graphs, jobs)
    return [prr for part in parts for prr in part]


def parallel_critical_sets(
    graph: DiGraph,
    seeds,
    count: int,
    master_seed: int = 0,
    workers: int | None = None,
) -> List[FrozenSet[int]]:
    """Sample ``count`` critical sets (the PRR-Boost-LB payload) in parallel."""
    seed_set = frozenset(int(s) for s in seeds)
    workers = workers or min(os.cpu_count() or 1, 8)
    if workers <= 1 or count < 64:
        rng = np.random.default_rng(master_seed)
        return [
            critical
            for _status, critical, _explored in sample_critical_batch(
                graph, seed_set, rng, count
            )
        ]
    seq = np.random.SeedSequence(master_seed)
    child_seeds = [int(s.generate_state(1)[0]) for s in seq.spawn(workers)]
    jobs = list(zip(child_seeds, _chunks(count, workers)))
    ctx = mp.get_context("fork")
    with ctx.Pool(
        workers, initializer=_init_worker, initargs=(graph, seed_set, 1)
    ) as pool:
        parts = pool.map(_worker_sample_critical, jobs)
    return [c for part in parts for c in part]
