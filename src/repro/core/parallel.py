"""Parallel PRR-graph generation.

The paper parallelizes PRR-graph generation with OpenMP over eight
threads.  The Python analogue uses a process pool (fork start method):
each worker owns a copy of the graph and an independently-seeded
generator, and streams back sampled PRR-graphs (or critical sets).

Scheduling: work is split into many small chunks streamed through
``imap_unordered`` — a worker that drew cheap samples (activated or
hopeless roots) immediately pulls the next chunk instead of idling behind
one giant per-worker slice.  Each chunk carries its own RNG seed derived
from a ``SeedSequence`` spawn keyed by chunk id, and the master reorders
results by chunk id, so the master seed fully determines the output
collection regardless of worker count or completion order (though it
yields a *different* — equally valid — sample than a sequential run).

IPC: workers return :class:`~repro.core.prr.PRRArena` payloads (a handful
of large flat arrays) or critical-set CSRs instead of pickled lists of
``PRRGraph``/frozenset objects, so serialization cost scales with bytes,
not object count.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import os
from typing import FrozenSet, List, Optional, Tuple

import numpy as np

from ..engine import SamplingEngine
from ..graphs.digraph import DiGraph
from .prr import PRRArena, sample_critical_batch, sample_prr_arena

__all__ = ["parallel_prr_collection", "parallel_critical_sets"]

# Samples per streamed chunk: small enough that stragglers rebalance,
# large enough that per-chunk overhead (seed spawn + one result pickle)
# stays negligible.
CHUNK_SIZE = 64

# Globals initialised once per worker process (fork-friendly pattern).
_worker_graph: Optional[DiGraph] = None
_worker_seeds: Optional[frozenset] = None
_worker_k: int = 0


def _init_worker(graph: DiGraph, seeds: frozenset, k: int) -> None:
    global _worker_graph, _worker_seeds, _worker_k
    _worker_graph = graph
    _worker_seeds = seeds
    _worker_k = k
    # Warm the engine once per worker; every streamed chunk reuses it.
    SamplingEngine.for_graph(graph)


def _worker_sample_graphs(args: Tuple[int, int, int]) -> Tuple[int, tuple]:
    chunk_id, seed, count = args
    rng = np.random.default_rng(seed)
    arena = sample_prr_arena(_worker_graph, _worker_seeds, _worker_k, rng, count)
    return chunk_id, arena.payload()


def _worker_sample_critical(
    args: Tuple[int, int, int]
) -> Tuple[int, np.ndarray, np.ndarray]:
    chunk_id, seed, count = args
    rng = np.random.default_rng(seed)
    engine = SamplingEngine.for_graph(_worker_graph)
    counts = np.empty(count, dtype=np.int64)
    members: List[np.ndarray] = []
    for i in range(count):
        _status, crit, _explored = engine.critical_members(_worker_seeds, rng)
        counts[i] = crit.size
        members.append(crit)
    values = (
        np.concatenate(members).astype(np.int32, copy=False)
        if members
        else np.empty(0, dtype=np.int32)
    )
    return chunk_id, counts, values


def _chunk_jobs(count: int, master_seed: int) -> List[Tuple[int, int, int]]:
    """``(chunk_id, seed, size)`` jobs of at most :data:`CHUNK_SIZE` samples.

    The chunking is a pure function of ``count`` (never of the worker
    count), and each chunk's RNG seed is spawned from its chunk id — so
    the merged collection depends only on ``(count, master_seed)``, no
    matter how many workers ran or in which order chunks finished.
    """
    num_chunks = math.ceil(count / CHUNK_SIZE)
    base, extra = divmod(count, num_chunks)
    sizes = [base + (1 if i < extra else 0) for i in range(num_chunks)]
    seq = np.random.SeedSequence(master_seed)
    seeds = [int(s.generate_state(1)[0]) for s in seq.spawn(num_chunks)]
    return [
        (cid, seed, size)
        for cid, (seed, size) in enumerate(zip(seeds, sizes))
        if size > 0
    ]


def parallel_prr_collection(
    graph: DiGraph,
    seeds,
    k: int,
    count: int,
    master_seed: int = 0,
    workers: int | None = None,
) -> PRRArena:
    """Sample ``count`` PRR-graphs across a process pool into one arena.

    Falls back to sequential generation when ``workers`` resolves to 1 or
    the platform lacks fork (keeps tests portable).  The result is a
    :class:`PRRArena` — index it for :class:`PRRGraph` views, or feed it
    directly to the vectorized estimators.
    """
    seed_set = frozenset(int(s) for s in seeds)
    workers = workers or min(os.cpu_count() or 1, 8)
    if workers <= 1 or count < 64:
        rng = np.random.default_rng(master_seed)
        return sample_prr_arena(graph, seed_set, k, rng, count)
    jobs = _chunk_jobs(count, master_seed)
    ctx = mp.get_context("fork")
    with ctx.Pool(
        workers, initializer=_init_worker, initargs=(graph, seed_set, k)
    ) as pool:
        parts = list(pool.imap_unordered(_worker_sample_graphs, jobs))
    parts.sort(key=lambda part: part[0])  # deterministic merge by chunk id
    return PRRArena.from_payloads([payload for _cid, payload in parts])


def parallel_critical_sets(
    graph: DiGraph,
    seeds,
    count: int,
    master_seed: int = 0,
    workers: int | None = None,
) -> List[FrozenSet[int]]:
    """Sample ``count`` critical sets (the PRR-Boost-LB payload) in parallel."""
    seed_set = frozenset(int(s) for s in seeds)
    workers = workers or min(os.cpu_count() or 1, 8)
    if workers <= 1 or count < 64:
        rng = np.random.default_rng(master_seed)
        return [
            critical
            for _status, critical, _explored in sample_critical_batch(
                graph, seed_set, rng, count
            )
        ]
    jobs = _chunk_jobs(count, master_seed)
    ctx = mp.get_context("fork")
    with ctx.Pool(
        workers, initializer=_init_worker, initargs=(graph, seed_set, 1)
    ) as pool:
        parts = list(pool.imap_unordered(_worker_sample_critical, jobs))
    parts.sort(key=lambda part: part[0])  # deterministic merge by chunk id
    out: List[FrozenSet[int]] = []
    for _cid, counts, values in parts:
        offsets = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        out.extend(
            frozenset(values[offsets[i] : offsets[i + 1]].tolist())
            for i in range(counts.size)
        )
    return out
