"""Greedy boosting with Monte-Carlo marginal evaluation (reference only).

The paper explicitly does *not* run this as a baseline "because it is
extremely computationally expensive even for the classical influence
maximization".  We include it anyway as a reference implementation for
small graphs: it is the most literal reading of "greedily maximize
``Δ_S``", useful for sanity-checking PRR-Boost on instances where it is
feasible, and for measuring exactly how expensive it is (an ablation in
its own right).
"""

from __future__ import annotations

from typing import List, Sequence, Set

import numpy as np

from ..diffusion.simulator import estimate_boost
from ..graphs.digraph import DiGraph

__all__ = ["mc_greedy_boost"]


def mc_greedy_boost(
    graph: DiGraph,
    seeds: Sequence[int] | Set[int],
    k: int,
    rng: np.random.Generator,
    runs: int = 500,
    candidates: Sequence[int] | None = None,
    model: str | None = None,
) -> List[int]:
    """Greedy k-boosting with simulated marginal gains.

    Each round evaluates ``Δ_S(B ∪ {v})`` by ``runs`` common-random-number
    simulations for every remaining candidate — O(k · |candidates| · runs)
    cascades.  Keep graphs small.

    ``model`` selects the diffusion semantics
    (:mod:`repro.engine.models`); unlike the PRR-based algorithms, which
    are specialized to the incoming-boost IC model, simulated greedy
    works under every registered model.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    seed_set = set(seeds)
    pool = (
        [v for v in range(graph.n) if v not in seed_set]
        if candidates is None
        else [v for v in candidates if v not in seed_set]
    )
    chosen: List[int] = []
    current = 0.0
    for _ in range(min(k, len(pool))):
        best, best_gain = None, 1e-12
        for v in pool:
            if v in chosen:
                continue
            value = estimate_boost(
                graph, seed_set, set(chosen) | {v}, rng, runs=runs,
                model=model,
            )
            gain = value - current
            if gain > best_gain:
                best, best_gain = v, gain
        if best is None:
            break
        chosen.append(best)
        current += best_gain
    return chosen
