"""Influence boosting diffusion model and Monte Carlo simulation."""

from .lt import estimate_lt_boost, normalize_lt_weights, simulate_lt_spread
from .model import BoostingModel
from .variants import (
    estimate_boost_outgoing,
    exact_boost_outgoing,
    exact_sigma_outgoing,
    optimal_boost_set,
    simulate_spread_outgoing,
)
from .worlds import WorldCollection
from .simulator import (
    estimate_boost,
    estimate_sigma,
    exact_boost,
    exact_sigma,
    simulate_spread,
)

__all__ = [
    "BoostingModel",
    "simulate_spread",
    "estimate_sigma",
    "estimate_boost",
    "exact_sigma",
    "exact_boost",
    "normalize_lt_weights",
    "simulate_lt_spread",
    "estimate_lt_boost",
    "simulate_spread_outgoing",
    "estimate_boost_outgoing",
    "exact_sigma_outgoing",
    "exact_boost_outgoing",
    "optimal_boost_set",
    "WorldCollection",
]
