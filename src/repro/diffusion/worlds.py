"""Fixed-world evaluation: compare many boost sets on identical randomness.

Definition 3 of the paper fixes a deterministic copy of the graph ("world")
and reasons about reachability inside it.  The same trick makes *candidate
comparison* fair and low-variance: sample ``runs`` worlds once, then score
every candidate boost set against the same worlds — a paired experiment in
which estimator noise cancels when sets are compared.

The benchmark harness uses this for the baseline sweeps (HighDegree returns
four candidate sets; evaluating them on shared worlds removes the luck of
independent Monte Carlo draws).
"""

from __future__ import annotations

from typing import AbstractSet, List, Sequence

import numpy as np

from ..engine import SamplingEngine
from ..graphs.digraph import DiGraph

__all__ = ["WorldCollection"]


class WorldCollection:
    """``runs`` sampled worlds over a graph with a fixed seed set.

    One uniform draw per CSR out-edge per world; a world's live edges for a
    boost set ``B`` are ``draw < threshold(B)``, with the Definition 3
    coupling (``draw < p`` live, ``p <= draw < p'`` live-upon-boost).

    The unboosted cascade size of each world is computed once at
    construction, so :meth:`boost` costs one cascade per world.
    """

    def __init__(
        self,
        graph: DiGraph,
        seeds: AbstractSet[int] | Sequence[int],
        rng: np.random.Generator,
        runs: int = 500,
    ) -> None:
        if runs <= 0:
            raise ValueError("runs must be positive")
        self.graph = graph
        self._engine = SamplingEngine.for_graph(graph)
        self.seed_idx = np.fromiter(set(seeds), dtype=np.int64)
        if self.seed_idx.size == 0:
            raise ValueError("seed set must be non-empty")
        self.runs = runs
        self._draws = rng.random((runs, graph.m))
        base_thr = self._engine.thresholds(set())
        self._base_sizes = np.array(
            [
                self._engine.cascade_count(self.seed_idx, self._draws[r] < base_thr)
                for r in range(runs)
            ],
            dtype=np.int64,
        )

    @property
    def sigma_empty(self) -> float:
        """``σ_S(∅)`` estimated on these worlds."""
        return float(self._base_sizes.mean())

    def sigma(self, boost: AbstractSet[int] | Sequence[int]) -> float:
        """``σ_S(B)`` on these worlds."""
        thr = self._engine.thresholds(set(boost))
        total = 0
        for r in range(self.runs):
            total += self._engine.cascade_count(self.seed_idx, self._draws[r] < thr)
        return total / self.runs

    def boost(self, boost: AbstractSet[int] | Sequence[int]) -> float:
        """``Δ_S(B)`` as a paired difference against the cached base sizes."""
        boost_set = set(boost)
        if not boost_set:
            return 0.0
        thr = self._engine.thresholds(boost_set)
        total = 0
        for r in range(self.runs):
            size = self._engine.cascade_count(self.seed_idx, self._draws[r] < thr)
            total += size - int(self._base_sizes[r])
        return total / self.runs

    def rank(
        self, candidates: Sequence[Sequence[int]]
    ) -> List[tuple[int, float]]:
        """Score candidate boost sets on shared worlds; best first.

        Returns ``(index, boost)`` pairs sorted descending by boost.
        """
        scored = [(i, self.boost(c)) for i, c in enumerate(candidates)]
        scored.sort(key=lambda item: -item[1])
        return scored
