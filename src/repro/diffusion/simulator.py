"""Monte Carlo simulation of the influence boosting model.

Provides

* :func:`simulate_spread` — one forward cascade, returns the activated set,
* :func:`estimate_sigma` — Monte Carlo estimate of the boosted influence
  spread ``σ_S(B)``,
* :func:`estimate_boost` — Monte Carlo estimate of ``Δ_S(B)`` using common
  random numbers (the same sampled worlds for ``B`` and ``∅``), which
  dramatically reduces the variance of the difference,
* :func:`exact_sigma` — exact ``σ_S(B)`` by enumerating all live/blocked
  worlds; exponential, only for tiny graphs (used as test ground truth).

Computing ``Δ_S(B)`` exactly is #P-hard (Theorem 1), hence simulation.

All Monte Carlo paths run on the shared vectorized engine
(:class:`repro.engine.SamplingEngine`): cascades are frontier BFS over the
out-CSR with numpy masks, and the estimators stream whole batches of worlds
through one engine instance.
"""

from __future__ import annotations

from itertools import product
from typing import AbstractSet, Sequence

import numpy as np

from ..engine import SamplingEngine
from ..graphs.digraph import DiGraph

__all__ = [
    "simulate_spread",
    "estimate_sigma",
    "estimate_boost",
    "exact_sigma",
    "exact_boost",
]


def simulate_spread(
    graph: DiGraph,
    seeds: AbstractSet[int] | Sequence[int],
    boost: AbstractSet[int] | Sequence[int],
    rng: np.random.Generator,
    model: str | None = None,
) -> set[int]:
    """Run one cascade; return the activated node set.

    ``model`` selects the diffusion semantics (``"ic"`` — the default
    incoming-boost IC — ``"ic_out"`` or ``"lt"``, see
    :mod:`repro.engine.models`).  Implementation note for the IC family:
    each edge is examined at most once (when its source first activates),
    sampling its outcome lazily — equivalent to sampling a whole
    deterministic world up front.
    """
    return SamplingEngine.for_graph(graph).simulate(
        seeds, boost, rng, model=model
    )


def estimate_sigma(
    graph: DiGraph,
    seeds: AbstractSet[int] | Sequence[int],
    boost: AbstractSet[int] | Sequence[int],
    rng: np.random.Generator,
    runs: int = 1000,
    model: str | None = None,
) -> float:
    """Monte Carlo estimate of the boosted influence spread ``σ_S(B)``."""
    return SamplingEngine.for_graph(graph).estimate_sigma(
        seeds, boost, rng, runs, model=model
    )


def estimate_boost(
    graph: DiGraph,
    seeds: AbstractSet[int] | Sequence[int],
    boost: AbstractSet[int] | Sequence[int],
    rng: np.random.Generator,
    runs: int = 1000,
    model: str | None = None,
) -> float:
    """Monte Carlo estimate of ``Δ_S(B) = σ_S(B) − σ_S(∅)``.

    Uses common random numbers: each run evaluates both the boosted and
    unboosted cascade in the *same* world (one uniform per edge for the
    default IC; a shared hashed world per run for the other models), so
    the difference estimator has far lower variance than two independent
    ``estimate_sigma`` calls.  Because ``p' >= p``, the boosted world's
    live edges are a superset of the base world's under the IC family, so
    every per-run difference is non-negative.
    """
    return SamplingEngine.for_graph(graph).estimate_boost(
        seeds, boost, rng, runs, model=model
    )


def exact_sigma(
    graph: DiGraph,
    seeds: AbstractSet[int] | Sequence[int],
    boost: AbstractSet[int] | Sequence[int],
) -> float:
    """Exact ``σ_S(B)`` by enumerating every live/blocked edge combination.

    Runs in ``O(2^m · (n + m))`` — strictly a test oracle for tiny graphs
    (``m`` up to ~16).
    """
    if graph.m > 20:
        raise ValueError("exact enumeration is limited to graphs with <= 20 edges")
    boost_set = set(boost)
    seed_list = list(seeds)
    src, dst, p, pp = graph.edge_arrays()
    effective = np.array(
        [pp[i] if int(dst[i]) in boost_set else p[i] for i in range(graph.m)]
    )
    expected = 0.0
    for outcome in product((0, 1), repeat=graph.m):
        prob = 1.0
        for i, live in enumerate(outcome):
            prob *= effective[i] if live else (1.0 - effective[i])
        if prob == 0.0:
            continue
        # BFS over live edges.
        adjacency: dict[int, list[int]] = {}
        for i, live in enumerate(outcome):
            if live:
                adjacency.setdefault(int(src[i]), []).append(int(dst[i]))
        reached = set(seed_list)
        stack = list(seed_list)
        while stack:
            u = stack.pop()
            for v in adjacency.get(u, ()):
                if v not in reached:
                    reached.add(v)
                    stack.append(v)
        expected += prob * len(reached)
    return expected


def exact_boost(
    graph: DiGraph,
    seeds: AbstractSet[int] | Sequence[int],
    boost: AbstractSet[int] | Sequence[int],
) -> float:
    """Exact ``Δ_S(B)`` via two exact enumerations (tiny graphs only)."""
    return exact_sigma(graph, seeds, boost) - exact_sigma(graph, seeds, set())
