"""Monte Carlo simulation of the influence boosting model.

Provides

* :func:`simulate_spread` — one forward cascade, returns the activated set,
* :func:`estimate_sigma` — Monte Carlo estimate of the boosted influence
  spread ``σ_S(B)``,
* :func:`estimate_boost` — Monte Carlo estimate of ``Δ_S(B)`` using common
  random numbers (the same sampled worlds for ``B`` and ``∅``), which
  dramatically reduces the variance of the difference,
* :func:`exact_sigma` — exact ``σ_S(B)`` by enumerating all live/blocked
  worlds; exponential, only for tiny graphs (used as test ground truth).

Computing ``Δ_S(B)`` exactly is #P-hard (Theorem 1), hence simulation.
"""

from __future__ import annotations

from itertools import product
from typing import AbstractSet, Iterable, Sequence

import numpy as np

from ..graphs.digraph import DiGraph

__all__ = [
    "simulate_spread",
    "estimate_sigma",
    "estimate_boost",
    "exact_sigma",
    "exact_boost",
]


def simulate_spread(
    graph: DiGraph,
    seeds: AbstractSet[int] | Sequence[int],
    boost: AbstractSet[int] | Sequence[int],
    rng: np.random.Generator,
) -> set[int]:
    """Run one cascade of the boosting model; return the activated node set.

    Implementation note: each edge is examined at most once (when its source
    first activates), sampling its outcome lazily — equivalent to sampling a
    whole deterministic world up front.
    """
    boost_set = set(boost)
    active = set(seeds)
    frontier = list(active)
    while frontier:
        next_frontier: list[int] = []
        for u in frontier:
            targets = graph.out_neighbors(u)
            if targets.size == 0:
                continue
            base = graph.out_probs(u)
            boosted = graph.out_boosted_probs(u)
            draws = rng.random(targets.size)
            for i in range(targets.size):
                v = int(targets[i])
                if v in active:
                    continue
                threshold = boosted[i] if v in boost_set else base[i]
                if draws[i] < threshold:
                    active.add(v)
                    next_frontier.append(v)
        frontier = next_frontier
    return active


def _csr_thresholds(
    graph: DiGraph, boost: AbstractSet[int]
) -> np.ndarray:
    """Per-CSR-out-position activation thresholds given a boost set ``B``.

    Position ``i`` of the out-CSR corresponds to one directed edge; its
    threshold is ``p'`` when the edge's head is boosted, else ``p``.
    """
    if not boost:
        return graph._out_p
    boost_mask = np.zeros(graph.n, dtype=bool)
    boost_mask[list(boost)] = True
    return np.where(boost_mask[graph._out_targets], graph._out_pp, graph._out_p)


def _cascade_size(
    graph: DiGraph, seed_idx: np.ndarray, live: np.ndarray
) -> int:
    """Cascade size in the world where CSR out-position ``i`` is live iff
    ``live[i]`` — a frontier BFS vectorized over numpy arrays."""
    indptr = graph._out_indptr
    targets_all = graph._out_targets
    active = np.zeros(graph.n, dtype=bool)
    active[seed_idx] = True
    frontier = seed_idx
    while frontier.size:
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Expand [start, start+count) ranges into flat edge positions.
        offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        edge_pos = np.repeat(starts, counts) + offsets
        hit = live[edge_pos]
        targets = targets_all[edge_pos[hit]]
        fresh = targets[~active[targets]]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh)
        active[frontier] = True
    return int(active.sum())


def estimate_sigma(
    graph: DiGraph,
    seeds: AbstractSet[int] | Sequence[int],
    boost: AbstractSet[int] | Sequence[int],
    rng: np.random.Generator,
    runs: int = 1000,
) -> float:
    """Monte Carlo estimate of the boosted influence spread ``σ_S(B)``."""
    if runs <= 0:
        raise ValueError("runs must be positive")
    seed_idx = np.fromiter(set(seeds), dtype=np.int64)
    thresholds = _csr_thresholds(graph, set(boost))
    total = 0
    for _ in range(runs):
        draws = rng.random(graph.m)
        total += _cascade_size(graph, seed_idx, draws < thresholds)
    return total / runs


def estimate_boost(
    graph: DiGraph,
    seeds: AbstractSet[int] | Sequence[int],
    boost: AbstractSet[int] | Sequence[int],
    rng: np.random.Generator,
    runs: int = 1000,
) -> float:
    """Monte Carlo estimate of ``Δ_S(B) = σ_S(B) − σ_S(∅)``.

    Uses common random numbers: each run samples one uniform per edge and
    evaluates both the boosted and unboosted cascade in the *same* world, so
    the difference estimator has far lower variance than two independent
    ``estimate_sigma`` calls.  Because ``p' >= p``, the boosted world's live
    edges are a superset of the base world's, so every per-run difference is
    non-negative.
    """
    if runs <= 0:
        raise ValueError("runs must be positive")
    seed_idx = np.fromiter(set(seeds), dtype=np.int64)
    base_thr = graph._out_p
    boosted_thr = _csr_thresholds(graph, set(boost))
    total = 0
    for _ in range(runs):
        draws = rng.random(graph.m)
        live_boosted = draws < boosted_thr
        with_boost = _cascade_size(graph, seed_idx, live_boosted)
        without = _cascade_size(graph, seed_idx, draws < base_thr)
        total += with_boost - without
    return total / runs


def exact_sigma(
    graph: DiGraph,
    seeds: AbstractSet[int] | Sequence[int],
    boost: AbstractSet[int] | Sequence[int],
) -> float:
    """Exact ``σ_S(B)`` by enumerating every live/blocked edge combination.

    Runs in ``O(2^m · (n + m))`` — strictly a test oracle for tiny graphs
    (``m`` up to ~16).
    """
    if graph.m > 20:
        raise ValueError("exact enumeration is limited to graphs with <= 20 edges")
    boost_set = set(boost)
    seed_list = list(seeds)
    src, dst, p, pp = graph.edge_arrays()
    effective = np.array(
        [pp[i] if int(dst[i]) in boost_set else p[i] for i in range(graph.m)]
    )
    expected = 0.0
    for outcome in product((0, 1), repeat=graph.m):
        prob = 1.0
        for i, live in enumerate(outcome):
            prob *= effective[i] if live else (1.0 - effective[i])
        if prob == 0.0:
            continue
        # BFS over live edges.
        adjacency: dict[int, list[int]] = {}
        for i, live in enumerate(outcome):
            if live:
                adjacency.setdefault(int(src[i]), []).append(int(dst[i]))
        reached = set(seed_list)
        stack = list(seed_list)
        while stack:
            u = stack.pop()
            for v in adjacency.get(u, ()):
                if v not in reached:
                    reached.add(v)
                    stack.append(v)
        expected += prob * len(reached)
    return expected


def exact_boost(
    graph: DiGraph,
    seeds: AbstractSet[int] | Sequence[int],
    boost: AbstractSet[int] | Sequence[int],
) -> float:
    """Exact ``Δ_S(B)`` via two exact enumerations (tiny graphs only)."""
    return exact_sigma(graph, seeds, boost) - exact_sigma(graph, seeds, set())
