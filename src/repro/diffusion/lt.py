"""Linear Threshold diffusion with boosting (paper's future-work direction).

Section IX of the paper names "similar problems under other influence
diffusion models, for example the well-known Linear Threshold (LT) model"
as future work.  This module provides that extension so downstream users
can experiment with it:

* classical LT: node ``v`` activates when the summed weights of its active
  in-neighbours exceed a uniform threshold ``θ_v ~ U[0, 1]``; edge weights
  ``b_uv`` must satisfy ``Σ_u b_uv ≤ 1``;
* **boosted LT**: a boosted node counts its incoming weights at the
  boosted value ``pp`` (clipped so the sum stays ≤ 1), modelling increased
  receptiveness — the LT analogue of ``p → p'``.

We reuse the graph's base probabilities as LT weights after per-node
normalization (:func:`normalize_lt_weights`), and reuse ``p'/p`` as the
boost per edge.

Everything here is a thin veneer over the engine's pluggable
diffusion-model layer (:mod:`repro.engine.models`, ``model="lt"``):
cascades run on the shared frontier CSR traversal, Monte-Carlo
estimation on the hashed-world cascade lane kernels of
:mod:`repro.engine.lanes`.  The pre-engine per-node loop survives as
:func:`repro.engine.reference.reference_simulate_lt_spread` (and its
world-seeded twin), the seeded oracles the engine kernels are pinned to.
"""

from __future__ import annotations

from typing import AbstractSet, Sequence

import numpy as np

from ..engine import SamplingEngine, resolve_model
from ..graphs.digraph import DiGraph

__all__ = ["normalize_lt_weights", "simulate_lt_spread", "estimate_lt_boost"]


def normalize_lt_weights(graph: DiGraph) -> DiGraph:
    """Rescale incoming probabilities so each node's in-weights sum to ≤ 1.

    Nodes whose incoming mass already sums below 1 are left untouched;
    heavier nodes are scaled down proportionally.  Boosted probabilities are
    scaled by the same factor, preserving each edge's boost ratio.

    This is exactly the graph view the LT model's
    :meth:`~repro.engine.models.DiffusionModel.prepare_graph` builds (and
    sessions cache per model); idempotent, so normalizing twice is safe.
    """
    return resolve_model("lt").prepare_graph(graph)


def simulate_lt_spread(
    graph: DiGraph,
    seeds: AbstractSet[int] | Sequence[int],
    boost: AbstractSet[int] | Sequence[int],
    rng: np.random.Generator,
) -> set[int]:
    """One boosted-LT cascade; returns the activated set.

    A boosted node ``v`` counts each incoming weight at its boosted value
    ``pp`` instead of ``p`` (with the per-node total clipped at 1), so it
    crosses its threshold sooner — more easily influenced, never
    self-starting, mirroring Definition 1's spirit.

    The cascade runs on the engine's LT model: the only random draw is
    the threshold vector, after which each level accumulates incoming
    weight for whole frontiers with ``np.add.at``.
    """
    return SamplingEngine.for_graph(graph).simulate(
        seeds, boost, rng, model="lt"
    )


def estimate_lt_boost(
    graph: DiGraph,
    seeds: AbstractSet[int] | Sequence[int],
    boost: AbstractSet[int] | Sequence[int],
    rng: np.random.Generator,
    runs: int = 1000,
) -> float:
    """Monte Carlo estimate of the LT boost of influence.

    Runs on the engine's hashed-world cascade lanes with common worlds
    per run (the same ``θ`` vector for the boosted and unboosted
    cascade), the LT analogue of common random numbers — the pairing is
    free because a lane seed fixes the whole threshold vector.
    """
    return SamplingEngine.for_graph(graph).estimate_boost(
        seeds, boost, rng, runs=runs, model="lt"
    )
