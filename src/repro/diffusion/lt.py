"""Linear Threshold diffusion with boosting (paper's future-work direction).

Section IX of the paper names "similar problems under other influence
diffusion models, for example the well-known Linear Threshold (LT) model"
as future work.  This module provides that extension so downstream users
can experiment with it:

* classical LT: node ``v`` activates when the summed weights of its active
  in-neighbours exceed a uniform threshold ``θ_v ~ U[0, 1]``; edge weights
  ``b_uv`` must satisfy ``Σ_u b_uv ≤ 1``;
* **boosted LT**: a boosted node scales its incoming weights by a factor
  ``γ ≥ 1`` (capped so the sum stays ≤ 1), modelling increased
  receptiveness — the LT analogue of ``p → p'``.

We reuse the graph's base probabilities as LT weights after per-node
normalization (:func:`normalize_lt_weights`), and reuse ``p'/p`` as the
boost factor per edge.
"""

from __future__ import annotations

from typing import AbstractSet, Sequence

import numpy as np

from ..engine import SamplingEngine
from ..engine.traversal import frontier_edge_positions
from ..graphs.digraph import DiGraph

__all__ = ["normalize_lt_weights", "simulate_lt_spread", "estimate_lt_boost"]


def normalize_lt_weights(graph: DiGraph) -> DiGraph:
    """Rescale incoming probabilities so each node's in-weights sum to ≤ 1.

    Nodes whose incoming mass already sums below 1 are left untouched;
    heavier nodes are scaled down proportionally.  Boosted probabilities are
    scaled by the same factor, preserving each edge's boost ratio.
    """
    src, dst, p, pp = graph.edge_arrays()
    in_mass = np.zeros(graph.n)
    np.add.at(in_mass, dst, p)
    scale = np.ones(graph.n)
    heavy = in_mass > 1.0
    scale[heavy] = 1.0 / in_mass[heavy]
    new_p = p * scale[dst]
    new_pp = np.minimum(pp * scale[dst], 1.0)
    return DiGraph(graph.n, src, dst, new_p, new_pp)


def simulate_lt_spread(
    graph: DiGraph,
    seeds: AbstractSet[int] | Sequence[int],
    boost: AbstractSet[int] | Sequence[int],
    rng: np.random.Generator,
) -> set[int]:
    """One boosted-LT cascade; returns the activated set.

    A boosted node ``v`` counts each incoming weight at its boosted value
    ``pp`` instead of ``p`` (with the per-node total clipped at 1), so it
    crosses its threshold sooner — more easily influenced, never
    self-starting, mirroring Definition 1's spirit.

    The cascade runs on the engine's out-CSR arrays: the only random draw
    is the threshold vector, after which each level accumulates incoming
    weight for whole frontiers with ``np.add.at``.
    """
    engine = SamplingEngine.for_graph(graph)
    thresholds = rng.random(graph.n)
    weights = engine.thresholds(set(boost))  # pp where head boosted, else p
    out = graph.out_csr()
    active = np.zeros(graph.n, dtype=bool)
    frontier = np.fromiter(set(seeds), dtype=np.int64)
    active[frontier] = True
    accumulated = np.zeros(graph.n)
    while frontier.size:
        pos, _counts = frontier_edge_positions(out.indptr, frontier)
        if pos.size == 0:
            break
        heads = out.nodes[pos]
        inactive = ~active[heads]
        np.add.at(accumulated, heads[inactive], weights[pos[inactive]])
        touched = np.unique(heads[inactive])
        crossed = np.minimum(accumulated[touched], 1.0) >= thresholds[touched]
        frontier = touched[crossed]
        active[frontier] = True
    return set(np.flatnonzero(active).tolist())


def estimate_lt_boost(
    graph: DiGraph,
    seeds: AbstractSet[int] | Sequence[int],
    boost: AbstractSet[int] | Sequence[int],
    rng: np.random.Generator,
    runs: int = 1000,
) -> float:
    """Monte Carlo estimate of the LT boost of influence.

    Uses common thresholds per run (the same ``θ`` vector for the boosted
    and unboosted cascade), the LT analogue of common random numbers.
    """
    if runs <= 0:
        raise ValueError("runs must be positive")
    boost_set = set(boost)
    total = 0.0
    for _ in range(runs):
        state = rng.bit_generator.state
        with_boost = len(simulate_lt_spread(graph, seeds, boost_set, rng))
        rng.bit_generator.state = state
        without = len(simulate_lt_spread(graph, seeds, set(), rng))
        total += with_boost - without
    return total / runs
