"""Model variants and exact oracles for the influence boosting model.

Two pieces of Section III the main simulator does not cover:

* **Outgoing-boost variant** — the paper notes (after Definition 1) that
  the study "can also be adapted to the case where boosted users are more
  influential": a newly-activated *boosted* user ``u`` influences each
  neighbour ``v`` with ``p'_uv`` instead of ``p_uv``.
  :func:`simulate_spread_outgoing` and :func:`exact_sigma_outgoing`
  implement that variant.

* **Brute-force k-boosting oracle** — NP-hardness permits exhaustive search
  only on tiny instances; :func:`optimal_boost_set` enumerates every boost
  set of size ≤ k against the exact spread, providing ground truth for
  algorithm tests.
"""

from __future__ import annotations

from itertools import combinations, product
from typing import AbstractSet, List, Sequence, Tuple

import numpy as np

from ..graphs.digraph import DiGraph
from .simulator import exact_sigma

__all__ = [
    "simulate_spread_outgoing",
    "exact_sigma_outgoing",
    "exact_boost_outgoing",
    "optimal_boost_set",
]


def simulate_spread_outgoing(
    graph: DiGraph,
    seeds: AbstractSet[int] | Sequence[int],
    boost: AbstractSet[int] | Sequence[int],
    rng: np.random.Generator,
) -> set[int]:
    """One cascade where boosted nodes are more *influential* (not more
    receptive): edges leaving a boosted node use ``p'``."""
    boost_set = set(boost)
    active = set(seeds)
    frontier = list(active)
    while frontier:
        next_frontier: list[int] = []
        for u in frontier:
            targets = graph.out_neighbors(u)
            if targets.size == 0:
                continue
            probs = (
                graph.out_boosted_probs(u)
                if u in boost_set
                else graph.out_probs(u)
            )
            draws = rng.random(targets.size)
            for i in range(targets.size):
                v = int(targets[i])
                if v not in active and draws[i] < probs[i]:
                    active.add(v)
                    next_frontier.append(v)
        frontier = next_frontier
    return active


def exact_sigma_outgoing(
    graph: DiGraph,
    seeds: AbstractSet[int] | Sequence[int],
    boost: AbstractSet[int] | Sequence[int],
) -> float:
    """Exact spread under the outgoing-boost variant (tiny graphs only).

    Each edge's effective probability depends on whether its *tail* is
    boosted, which is again static, so world enumeration applies unchanged.
    """
    if graph.m > 20:
        raise ValueError("exact enumeration is limited to graphs with <= 20 edges")
    boost_set = set(boost)
    seed_list = list(seeds)
    src, dst, p, pp = graph.edge_arrays()
    effective = np.array(
        [pp[i] if int(src[i]) in boost_set else p[i] for i in range(graph.m)]
    )
    expected = 0.0
    for outcome in product((0, 1), repeat=graph.m):
        prob = 1.0
        for i, live in enumerate(outcome):
            prob *= effective[i] if live else (1.0 - effective[i])
        if prob == 0.0:
            continue
        adjacency: dict[int, list[int]] = {}
        for i, live in enumerate(outcome):
            if live:
                adjacency.setdefault(int(src[i]), []).append(int(dst[i]))
        reached = set(seed_list)
        stack = list(seed_list)
        while stack:
            u = stack.pop()
            for v in adjacency.get(u, ()):
                if v not in reached:
                    reached.add(v)
                    stack.append(v)
        expected += prob * len(reached)
    return expected


def exact_boost_outgoing(
    graph: DiGraph,
    seeds: AbstractSet[int] | Sequence[int],
    boost: AbstractSet[int] | Sequence[int],
) -> float:
    """Exact ``Δ_S(B)`` under the outgoing-boost variant."""
    return exact_sigma_outgoing(graph, seeds, boost) - exact_sigma_outgoing(
        graph, seeds, set()
    )


def optimal_boost_set(
    graph: DiGraph,
    seeds: AbstractSet[int],
    k: int,
    candidates: Sequence[int] | None = None,
) -> Tuple[List[int], float]:
    """Exhaustive optimum of the k-boosting problem (test oracle).

    Enumerates all boost sets of size ≤ k over the candidates (non-seeds by
    default) and evaluates each with :func:`exact_sigma` — exponential in
    both ``m`` and ``k``; keep instances tiny.
    """
    seed_set = set(seeds)
    pool = (
        [v for v in range(graph.n) if v not in seed_set]
        if candidates is None
        else [v for v in candidates if v not in seed_set]
    )
    base = exact_sigma(graph, seed_set, set())
    best_value = 0.0
    best_set: Tuple[int, ...] = ()
    for size in range(1, min(k, len(pool)) + 1):
        for boost in combinations(pool, size):
            value = exact_sigma(graph, seed_set, set(boost)) - base
            if value > best_value + 1e-12:
                best_value = value
                best_set = boost
    return list(best_set), best_value
