"""Model variants and exact oracles for the influence boosting model.

Two pieces of Section III the main simulator does not cover:

* **Outgoing-boost variant** — the paper notes (after Definition 1) that
  the study "can also be adapted to the case where boosted users are more
  influential": a newly-activated *boosted* user ``u`` influences each
  neighbour ``v`` with ``p'_uv`` instead of ``p_uv``.
  :func:`simulate_spread_outgoing` and :func:`exact_sigma_outgoing`
  implement that variant.  Simulation runs on the engine's pluggable
  diffusion-model layer (``model="ic_out"``, same frontier traversal and
  lane kernels as the main model); the pre-engine per-node loop survives
  as :func:`repro.engine.reference.reference_simulate_spread_outgoing`,
  the seeded oracle the engine path is pinned to bit-for-bit.

* **Brute-force k-boosting oracle** — NP-hardness permits exhaustive search
  only on tiny instances; :func:`optimal_boost_set` enumerates every boost
  set of size ≤ k against the exact spread of either boost semantics
  (``model="ic"`` or ``"ic_out"``), providing ground truth for algorithm
  tests.
"""

from __future__ import annotations

from itertools import combinations, product
from typing import AbstractSet, List, Sequence, Tuple

import numpy as np

from ..engine import SamplingEngine
from ..graphs.digraph import DiGraph
from .simulator import exact_sigma

__all__ = [
    "simulate_spread_outgoing",
    "estimate_boost_outgoing",
    "exact_sigma_outgoing",
    "exact_boost_outgoing",
    "optimal_boost_set",
]


def simulate_spread_outgoing(
    graph: DiGraph,
    seeds: AbstractSet[int] | Sequence[int],
    boost: AbstractSet[int] | Sequence[int],
    rng: np.random.Generator,
) -> set[int]:
    """One cascade where boosted nodes are more *influential* (not more
    receptive): edges leaving a boosted node use ``p'``.

    Runs on the engine's ``ic_out`` model — draw-for-draw the stream the
    retained pure-Python oracle consumes, so seeded runs agree
    bit-for-bit.
    """
    return SamplingEngine.for_graph(graph).simulate(
        seeds, boost, rng, model="ic_out"
    )


def estimate_boost_outgoing(
    graph: DiGraph,
    seeds: AbstractSet[int] | Sequence[int],
    boost: AbstractSet[int] | Sequence[int],
    rng: np.random.Generator,
    runs: int = 1000,
) -> float:
    """Monte Carlo ``Δ_S(B)`` under the outgoing-boost variant.

    Common random numbers come free: each run's hashed world is evaluated
    under both ``B`` and ``∅`` on the engine's cascade lane kernels.
    """
    return SamplingEngine.for_graph(graph).estimate_boost(
        seeds, boost, rng, runs=runs, model="ic_out"
    )


def exact_sigma_outgoing(
    graph: DiGraph,
    seeds: AbstractSet[int] | Sequence[int],
    boost: AbstractSet[int] | Sequence[int],
) -> float:
    """Exact spread under the outgoing-boost variant (tiny graphs only).

    Each edge's effective probability depends on whether its *tail* is
    boosted, which is again static, so world enumeration applies unchanged.
    """
    if graph.m > 20:
        raise ValueError("exact enumeration is limited to graphs with <= 20 edges")
    boost_set = set(boost)
    seed_list = list(seeds)
    src, dst, p, pp = graph.edge_arrays()
    effective = np.array(
        [pp[i] if int(src[i]) in boost_set else p[i] for i in range(graph.m)]
    )
    expected = 0.0
    for outcome in product((0, 1), repeat=graph.m):
        prob = 1.0
        for i, live in enumerate(outcome):
            prob *= effective[i] if live else (1.0 - effective[i])
        if prob == 0.0:
            continue
        adjacency: dict[int, list[int]] = {}
        for i, live in enumerate(outcome):
            if live:
                adjacency.setdefault(int(src[i]), []).append(int(dst[i]))
        reached = set(seed_list)
        stack = list(seed_list)
        while stack:
            u = stack.pop()
            for v in adjacency.get(u, ()):
                if v not in reached:
                    reached.add(v)
                    stack.append(v)
        expected += prob * len(reached)
    return expected


def exact_boost_outgoing(
    graph: DiGraph,
    seeds: AbstractSet[int] | Sequence[int],
    boost: AbstractSet[int] | Sequence[int],
) -> float:
    """Exact ``Δ_S(B)`` under the outgoing-boost variant."""
    return exact_sigma_outgoing(graph, seeds, boost) - exact_sigma_outgoing(
        graph, seeds, set()
    )


def optimal_boost_set(
    graph: DiGraph,
    seeds: AbstractSet[int],
    k: int,
    candidates: Sequence[int] | None = None,
    model: str = "ic",
) -> Tuple[List[int], float]:
    """Exhaustive optimum of the k-boosting problem (test oracle).

    Enumerates all boost sets of size ≤ k over the candidates (non-seeds by
    default) and evaluates each with the exact spread of the requested
    boost semantics (:func:`exact_sigma` for ``"ic"``,
    :func:`exact_sigma_outgoing` for ``"ic_out"``) — exponential in both
    ``m`` and ``k``; keep instances tiny.
    """
    if model in ("ic", "ic_in", "incoming", None):
        sigma = exact_sigma
    elif model in ("ic_out", "outgoing", "ic_outgoing"):
        sigma = exact_sigma_outgoing
    else:
        raise ValueError(
            f"no exact oracle for model {model!r}; expected 'ic' or 'ic_out'"
        )
    seed_set = set(seeds)
    pool = (
        [v for v in range(graph.n) if v not in seed_set]
        if candidates is None
        else [v for v in candidates if v not in seed_set]
    )
    base = sigma(graph, seed_set, set())
    best_value = 0.0
    best_set: Tuple[int, ...] = ()
    for size in range(1, min(k, len(pool)) + 1):
        for boost in combinations(pool, size):
            value = sigma(graph, seed_set, set(boost)) - base
            if value > best_value + 1e-12:
                best_value = value
                best_set = boost
    return list(best_set), best_value
