"""The influence boosting model (Definition 1 of the paper).

A :class:`BoostingModel` bundles a graph, a seed set ``S`` and validates
boost sets ``B``.  Influence propagates as in the Independent Cascade model
except that a newly-activated node ``u`` influences a *boosted* neighbour
``v`` with the boosted probability ``p'_uv`` instead of ``p_uv``.
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, Iterable

from ..graphs.digraph import DiGraph

__all__ = ["BoostingModel"]


class BoostingModel:
    """Influence boosting model instance: a graph plus a fixed seed set.

    Parameters
    ----------
    graph:
        The social network with ``p`` and ``p'`` per edge.
    seeds:
        The fixed initial adopters ``S``; they are active at time 0.
    """

    __slots__ = ("graph", "seeds")

    def __init__(self, graph: DiGraph, seeds: Iterable[int]) -> None:
        seed_set = frozenset(int(s) for s in seeds)
        if not seed_set:
            raise ValueError("seed set must be non-empty")
        for s in seed_set:
            if not 0 <= s < graph.n:
                raise ValueError(f"seed {s} out of range for n={graph.n}")
        self.graph = graph
        self.seeds: FrozenSet[int] = seed_set

    @property
    def n(self) -> int:
        return self.graph.n

    def validate_boost_set(self, boost: Iterable[int]) -> FrozenSet[int]:
        """Normalize and validate a boost set ``B``.

        Boosting a seed is allowed by the model but has no effect (seeds are
        already active); we permit it rather than erroring so greedy
        selectors never have to special-case, but callers typically exclude
        seeds from candidates.
        """
        boost_set = frozenset(int(b) for b in boost)
        for b in boost_set:
            if not 0 <= b < self.graph.n:
                raise ValueError(f"boosted node {b} out of range for n={self.graph.n}")
        return boost_set

    def candidate_nodes(self) -> list[int]:
        """Nodes eligible for boosting: all non-seeds."""
        return [v for v in range((self.graph.n)) if v not in self.seeds]

    def is_seed(self, v: int) -> bool:
        return v in self.seeds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BoostingModel(n={self.graph.n}, m={self.graph.m}, |S|={len(self.seeds)})"


def ensure_disjoint(seeds: AbstractSet[int], boost: AbstractSet[int]) -> None:
    """Raise when a boost set overlaps the seed set (helper for strict callers)."""
    overlap = seeds & boost
    if overlap:
        raise ValueError(f"boost set overlaps seeds: {sorted(overlap)[:5]}")
