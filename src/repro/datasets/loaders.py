"""One graph loader for every source kind the tooling accepts.

``load_graph`` dispatches on what the argument *is* rather than making
callers pick a loader:

* a synthetic dataset name (``digg-like``, …) — built via
  :func:`load_dataset`,
* a path to a binary graph store (content-detected by magic) — opened
  zero-copy via :func:`repro.storage.open_graph`,
* a path to a plain or gzip'd edge list — parsed via
  :func:`repro.graphs.io.read_edge_list`.

This is the resolution behind ``repro query --graph-store`` / ``repro
serve --graph-store`` and the recommended entry point for scripts.
"""

from __future__ import annotations

import os

from ..graphs.digraph import DiGraph
from .synthetic import DATASETS, load_dataset

__all__ = ["load_graph"]


def load_graph(source, seed: int = 7, mode: str = "mmap") -> DiGraph:
    """Load a graph from a dataset name, store file, or edge-list file.

    ``mode`` applies to store files only: ``"mmap"`` (default) backs the
    graph by views over the file, ``"memory"`` materializes it.
    """
    name = os.fspath(source)
    if name in DATASETS:
        return load_dataset(name, seed=seed)
    if not os.path.exists(name):
        raise FileNotFoundError(
            f"{name!r} is neither a dataset name ({', '.join(DATASETS)}) "
            f"nor an existing file"
        )
    from ..storage import is_store, open_graph

    if is_store(name):
        return open_graph(name, mode=mode)
    from ..graphs.io import read_edge_list

    return read_edge_list(name)
