"""Scaled-down synthetic stand-ins for the paper's four datasets.

The paper evaluates on Digg, Flixster, Twitter and Flickr (Table 1).  Those
traces are not redistributable, so we generate preferential-attachment
graphs whose *relative* characteristics mirror Table 1:

================  =======  =======  ===================  =================
dataset           nodes    edges    avg. influence prob  character
================  =======  =======  ===================  =================
Digg (real)       28K      200K     0.239                small, moderate p
Flixster (real)   96K      485K     0.228                medium, moderate p
Twitter (real)    323K     2.14M    0.608                dense, high p
Flickr (real)     1.45M    2.15M    0.013                large, sparse p
----------------  -------  -------  -------------------  -----------------
digg-like         1,000    ~7K      0.24                 scale 1/28
flixster-like     2,000    ~10K     0.23                 scale 1/48
twitter-like      3,000    ~20K     0.60                 scale 1/107
flickr-like       6,000    ~9K      0.013                scale 1/242
================  =======  =======  ===================  =================

The four characteristics that drive every algorithmic comparison in the
paper — degree skew, average influence probability, edge/node ratio, and
the gap between the dense/high-p regime (Twitter) and the sparse/low-p
regime (Flickr) — are preserved, so the *shape* of each figure is
reproducible even though absolute spreads are smaller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from ..graphs.digraph import DiGraph
from ..graphs.generators import preferential_attachment
from ..graphs.probabilities import learned_like

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "dataset_names"]


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic dataset."""

    name: str
    n: int
    m_per_node: int
    reciprocity: float
    mean_probability: float
    sigma: float
    description: str

    def build(self, rng: np.random.Generator, beta: float = 2.0) -> DiGraph:
        topology = preferential_attachment(
            self.n, self.m_per_node, rng, reciprocity=self.reciprocity
        )
        return learned_like(
            topology, rng, self.mean_probability, beta=beta, sigma=self.sigma
        )


DATASETS: Dict[str, DatasetSpec] = {
    "digg-like": DatasetSpec(
        name="digg-like",
        n=1000,
        m_per_node=5,
        reciprocity=0.3,
        mean_probability=0.239,
        sigma=1.0,
        description="small network, moderate influence probabilities (Digg analogue)",
    ),
    "flixster-like": DatasetSpec(
        name="flixster-like",
        n=2000,
        m_per_node=4,
        reciprocity=0.25,
        mean_probability=0.228,
        sigma=1.0,
        description="medium network, moderate influence probabilities (Flixster analogue)",
    ),
    "twitter-like": DatasetSpec(
        name="twitter-like",
        n=3000,
        m_per_node=5,
        reciprocity=0.4,
        mean_probability=0.608,
        sigma=0.6,
        description="denser network with high influence probabilities (Twitter analogue)",
    ),
    "flickr-like": DatasetSpec(
        name="flickr-like",
        n=6000,
        m_per_node=1,
        reciprocity=0.3,
        mean_probability=0.013,
        sigma=1.2,
        description="large sparse-influence network (Flickr analogue)",
    ),
}


def dataset_names() -> List[str]:
    """Stable ordering of the four dataset stand-ins (Table 1 order)."""
    return ["digg-like", "flixster-like", "twitter-like", "flickr-like"]


def load_dataset(name: str, seed: int = 7, beta: float = 2.0) -> DiGraph:
    """Build the named synthetic dataset deterministically from ``seed``."""
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; choose from {dataset_names()}")
    rng = np.random.default_rng(seed)
    return DATASETS[name].build(rng, beta=beta)
