"""Synthetic dataset stand-ins for the paper's evaluation networks."""

from .synthetic import DATASETS, DatasetSpec, dataset_names, load_dataset

__all__ = ["DATASETS", "DatasetSpec", "dataset_names", "load_dataset"]
