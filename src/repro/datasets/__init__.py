"""Synthetic dataset stand-ins and real-dataset loaders."""

from .loaders import load_graph
from .synthetic import DATASETS, DatasetSpec, dataset_names, load_dataset

__all__ = ["DATASETS", "DatasetSpec", "dataset_names", "load_dataset", "load_graph"]
