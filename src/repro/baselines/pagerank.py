"""PageRank boosting baseline (Section VII).

The paper adapts the influence-maximization PageRank baseline of Chen et
al.: when ``u`` influences ``v``, node ``v`` "votes" for ``u``, so the
random walk moves *against* influence edges.  The transition probability on
edge ``e_uv`` is ``p_vu / ρ(u)`` where ``ρ(u)`` sums the influence
probabilities on ``u``'s incoming edges; restart probability 0.15;
iteration stops when consecutive L1 difference drops below ``1e-4``.

:func:`ppr_scores` / :func:`ppr_baseline` are the *personalized* variant:
the restart vector is uniform over the query's seed set instead of over
all nodes, so the stationary mass concentrates on nodes whose influence
reaches the seeds — a seed-aware ranking the global walk cannot express.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from ..graphs.digraph import DiGraph

__all__ = [
    "pagerank_scores",
    "pagerank_baseline",
    "ppr_scores",
    "ppr_baseline",
]


def _walk_scores(
    graph: DiGraph,
    restart_vec: np.ndarray,
    restart: float,
    tol: float,
    max_iter: int,
) -> np.ndarray:
    """Power iteration of the reversed-influence walk.

    ``restart_vec`` is the (normalized) teleport distribution; dangling
    mass (nodes with no incoming influence) teleports the same way, so
    the iteration conserves probability mass for any restart vector.
    """
    n = graph.n
    src, dst, p, _pp = graph.edge_arrays()
    # rho[u] = total incoming influence probability of u.
    rho = np.zeros(n)
    np.add.at(rho, dst, p)

    # Walk transition: the paper writes the transition on edge e_uv as
    # p_vu / rho(u); equivalently mass flows from u to each of its
    # in-influencers proportionally to their influence on u.
    safe_rho = np.where(rho > 0, rho, 1.0)
    weights = p / safe_rho[dst]
    dangling_mask = rho == 0

    scores = restart_vec.copy()
    for _ in range(max_iter):
        contrib = np.zeros(n)
        # Node u distributes its score to every in-neighbor v proportionally
        # to p_vu / rho(u).
        np.add.at(contrib, src, scores[dst] * weights)
        dangling = scores[dangling_mask].sum()
        new_scores = restart * restart_vec + (1.0 - restart) * (
            contrib + dangling * restart_vec
        )
        if np.abs(new_scores - scores).sum() < tol:
            scores = new_scores
            break
        scores = new_scores
    return scores


def pagerank_scores(
    graph: DiGraph,
    restart: float = 0.15,
    tol: float = 1e-4,
    max_iter: int = 200,
) -> np.ndarray:
    """Influence-weighted PageRank vector (paper's baseline configuration)."""
    n = graph.n
    return _walk_scores(graph, np.full(n, 1.0 / n), restart, tol, max_iter)


def ppr_scores(
    graph: DiGraph,
    seeds: Iterable[int],
    restart: float = 0.15,
    tol: float = 1e-4,
    max_iter: int = 200,
) -> np.ndarray:
    """Personalized PageRank of the reversed-influence walk.

    The walk restarts uniformly over ``seeds`` instead of over all
    nodes, so score mass concentrates on nodes whose influence chains
    reach the seed set — the natural "who amplifies *these* seeds"
    ranking for boost selection.
    """
    seed_arr = np.asarray(sorted({int(s) for s in seeds}), dtype=np.int64)
    if seed_arr.size == 0:
        raise ValueError("ppr_scores requires a non-empty seed set")
    if seed_arr[0] < 0 or seed_arr[-1] >= graph.n:
        raise ValueError("seed out of range")
    restart_vec = np.zeros(graph.n)
    restart_vec[seed_arr] = 1.0 / seed_arr.size
    return _walk_scores(graph, restart_vec, restart, tol, max_iter)


def ppr_baseline(
    graph: DiGraph,
    seeds: Iterable[int],
    k: int,
    restart: float = 0.15,
) -> List[int]:
    """Top-``k`` non-seed nodes by seed-personalized PageRank."""
    seed_set = set(int(s) for s in seeds)
    scores = ppr_scores(graph, seed_set, restart=restart)
    order = np.argsort(-scores, kind="stable")
    result: List[int] = []
    for v in order:
        v = int(v)
        if v in seed_set:
            continue
        result.append(v)
        if len(result) == k:
            break
    return result


def pagerank_baseline(graph: DiGraph, seeds: Iterable[int], k: int) -> List[int]:
    """Top-``k`` non-seed nodes by influence-weighted PageRank."""
    seed_set = set(seeds)
    scores = pagerank_scores(graph)
    order = np.argsort(-scores, kind="stable")
    result: List[int] = []
    for v in order:
        v = int(v)
        if v in seed_set:
            continue
        result.append(v)
        if len(result) == k:
            break
    return result
