"""PageRank boosting baseline (Section VII).

The paper adapts the influence-maximization PageRank baseline of Chen et
al.: when ``u`` influences ``v``, node ``v`` "votes" for ``u``, so the
random walk moves *against* influence edges.  The transition probability on
edge ``e_uv`` is ``p_vu / ρ(u)`` where ``ρ(u)`` sums the influence
probabilities on ``u``'s incoming edges; restart probability 0.15;
iteration stops when consecutive L1 difference drops below ``1e-4``.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from ..graphs.digraph import DiGraph

__all__ = ["pagerank_scores", "pagerank_baseline"]


def pagerank_scores(
    graph: DiGraph,
    restart: float = 0.15,
    tol: float = 1e-4,
    max_iter: int = 200,
) -> np.ndarray:
    """Influence-weighted PageRank vector (paper's baseline configuration)."""
    n = graph.n
    src, dst, p, _pp = graph.edge_arrays()
    # rho[u] = total incoming influence probability of u.
    rho = np.zeros(n)
    np.add.at(rho, dst, p)

    # Walk transition: from v along reversed influence edge (u -> v carries
    # weight p_uv / rho... careful: the paper writes the transition on edge
    # e_uv as p_vu / rho(u); equivalently mass flows from u to each of its
    # in-influencers proportionally to their influence on u.
    scores = np.full(n, 1.0 / n)
    for _ in range(max_iter):
        contrib = np.zeros(n)
        # Node u distributes its score to every in-neighbor v proportionally
        # to p_vu / rho(u).
        safe_rho = np.where(rho > 0, rho, 1.0)
        weights = p / safe_rho[dst]
        np.add.at(contrib, src, scores[dst] * weights)
        # Dangling mass (nodes with rho == 0) is spread uniformly.
        dangling = scores[rho == 0].sum()
        new_scores = restart / n + (1.0 - restart) * (contrib + dangling / n)
        if np.abs(new_scores - scores).sum() < tol:
            scores = new_scores
            break
        scores = new_scores
    return scores


def pagerank_baseline(graph: DiGraph, seeds: Iterable[int], k: int) -> List[int]:
    """Top-``k`` non-seed nodes by influence-weighted PageRank."""
    seed_set = set(seeds)
    scores = pagerank_scores(graph)
    order = np.argsort(-scores, kind="stable")
    result: List[int] = []
    for v in order:
        v = int(v)
        if v in seed_set:
            continue
        result.append(v)
        if len(result) == k:
            break
    return result
