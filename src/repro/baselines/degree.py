"""Degree-based boosting baselines (Section VII).

``HighDegreeGlobal`` iteratively picks the node with the highest *weighted
degree*; the paper evaluates four weighted-degree definitions and reports
the best:

1. sum of influence probabilities on outgoing edges ``Σ p_uv``,
2. the same with already-selected heads discounted,
3. sum of the boost gaps on incoming edges ``Σ (p'_vu − p_vu)``,
4. the same with already-selected tails discounted.

``HighDegreeLocal`` restricts candidates to nodes close to the seeds,
expanding hop-by-hop until ``k`` nodes are available.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set

import numpy as np

from ..graphs.digraph import DiGraph

__all__ = ["high_degree_global", "high_degree_local", "weighted_degree_variants"]


def _score_out_prob(graph: DiGraph, v: int, chosen: Set[int]) -> float:
    return float(graph.out_probs(v).sum())


def _score_out_prob_discounted(graph: DiGraph, v: int, chosen: Set[int]) -> float:
    targets = graph.out_neighbors(v)
    probs = graph.out_probs(v)
    return float(sum(p for t, p in zip(targets, probs) if int(t) not in chosen))


def _score_in_gap(graph: DiGraph, v: int, chosen: Set[int]) -> float:
    return float((graph.in_boosted_probs(v) - graph.in_probs(v)).sum())


def _score_in_gap_discounted(graph: DiGraph, v: int, chosen: Set[int]) -> float:
    sources = graph.in_neighbors(v)
    gaps = graph.in_boosted_probs(v) - graph.in_probs(v)
    return float(sum(g for s, g in zip(sources, gaps) if int(s) not in chosen))


_VARIANTS = (
    _score_out_prob,
    _score_out_prob_discounted,
    _score_in_gap,
    _score_in_gap_discounted,
)


def weighted_degree_variants() -> tuple:
    """The four weighted-degree scoring functions, for ablation access."""
    return _VARIANTS


def _select_by_score(
    graph: DiGraph,
    candidates: Sequence[int],
    k: int,
    score_fn,
) -> List[int]:
    chosen: Set[int] = set()
    result: List[int] = []
    pool = list(candidates)
    for _ in range(min(k, len(pool))):
        best, best_score = None, -1.0
        for v in pool:
            if v in chosen:
                continue
            s = score_fn(graph, v, chosen)
            if s > best_score:
                best, best_score = v, s
        if best is None:
            break
        chosen.add(best)
        result.append(best)
    return result


def high_degree_global(
    graph: DiGraph, seeds: Iterable[int], k: int
) -> List[List[int]]:
    """Return the four HighDegreeGlobal candidate boost sets.

    Callers evaluate each with Monte Carlo and keep the best — mirroring the
    paper, which reports "the maximum boost of influence among four
    solutions".
    """
    seed_set = set(seeds)
    candidates = [v for v in range(graph.n) if v not in seed_set]
    return [_select_by_score(graph, candidates, k, fn) for fn in _VARIANTS]


def _nodes_within_hops(graph: DiGraph, seeds: Set[int], k: int) -> List[int]:
    """Expand outward from the seeds hop-by-hop until >= k candidates."""
    current = set(seeds)
    frontier = set(seeds)
    candidates: List[int] = []
    while frontier and len(candidates) < k:
        next_frontier: Set[int] = set()
        for u in frontier:
            for v in graph.out_neighbors(u):
                v = int(v)
                if v not in current:
                    current.add(v)
                    next_frontier.add(v)
                    candidates.append(v)
        frontier = next_frontier
    if len(candidates) < k:
        # Not enough nodes near seeds; pad with the remaining nodes.
        for v in range(graph.n):
            if v not in current:
                candidates.append(v)
                if len(candidates) >= k:
                    break
    return candidates


def high_degree_local(
    graph: DiGraph, seeds: Iterable[int], k: int
) -> List[List[int]]:
    """HighDegreeLocal: the four variants restricted to seed-adjacent nodes."""
    seed_set = set(seeds)
    candidates = _nodes_within_hops(graph, seed_set, k)
    return [_select_by_score(graph, candidates, k, fn) for fn in _VARIANTS]
