"""Heuristic baselines the paper compares against (Section VII)."""

from .degree import high_degree_global, high_degree_local, weighted_degree_variants
from .moreseeds import more_seeds_baseline
from .pagerank import pagerank_baseline, pagerank_scores, ppr_baseline, ppr_scores

__all__ = [
    "high_degree_global",
    "high_degree_local",
    "weighted_degree_variants",
    "pagerank_baseline",
    "pagerank_scores",
    "ppr_baseline",
    "ppr_scores",
    "more_seeds_baseline",
]
