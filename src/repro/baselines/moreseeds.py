"""MoreSeeds baseline (Section VII).

Adapts the IMM framework to pick ``k`` *additional seeds* maximizing the
marginal influence given the existing seed set, then returns those nodes as
the boost set.  The paper uses this to demonstrate that good extra seeds are
poor boosts: extra seeds gravitate to uncovered regions, while effective
boosts sit close to the existing seeds.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Set

import numpy as np

from ..graphs.digraph import DiGraph
from ..im.greedy import greedy_max_coverage
from ..im.imm import imm_sampling
from ..im.rr import random_rr_set

__all__ = ["more_seeds_baseline"]


class _MarginalRRSampler:
    """RR-sets that ignore roots already covered by the existing seeds.

    An RR-set whose node set intersects ``S`` contributes nothing to the
    marginal influence of extra seeds, so it is reported as an empty set
    (still counted by the estimator's denominator).
    """

    def __init__(self, graph: DiGraph, seeds: Set[int]) -> None:
        self.graph = graph
        self.seeds = frozenset(seeds)
        self.n = graph.n

    def sample(self, rng: np.random.Generator) -> FrozenSet[int]:
        rr = random_rr_set(self.graph, rng)
        if rr & self.seeds:
            return frozenset()
        return rr


def more_seeds_baseline(
    graph: DiGraph,
    seeds: Iterable[int],
    k: int,
    rng: np.random.Generator,
    epsilon: float = 0.5,
    ell: float = 1.0,
    max_samples: int = 100_000,
) -> List[int]:
    """Select ``k`` extra-seed nodes via IMM on marginal RR coverage."""
    seed_set = set(seeds)
    candidates = {v for v in range(graph.n) if v not in seed_set}
    sampler = _MarginalRRSampler(graph, seed_set)
    samples = imm_sampling(
        sampler, k, epsilon, ell, rng, candidates=candidates, max_samples=max_samples
    )
    chosen, _covered = greedy_max_coverage(samples, k, candidates)
    return chosen
